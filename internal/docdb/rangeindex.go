package docdb

// Ordered (range) indexes: a sorted projection of one field over the whole
// collection, serving three planner paths that a hash index cannot:
//
//   - range predicates (Lt/Lte/Gt/Gte, and Eq as a degenerate range),
//   - index-ordered scans for SortBy on the indexed field, streaming
//     top-K results without sorting the collection,
//   - reverse scans for SortDesc.
//
// Maintenance is amortised, two-level (a small LSM): mutations append to a
// pending buffer or tombstone into a dead set, and every mutating operation
// settles the index before releasing the write lock — re-sorting pending
// and, when a buffer outgrows its (geometric) threshold, merging into the
// sorted entries slice. Queries run under the read lock and never mutate
// the index: they binary-search entries, skip dead tombstones, and fold in
// the pending buffer, which the settle invariant keeps sorted.
//
// Every document gets an entry: a missing field keys as nil, exactly how
// the sort comparators treat it, so an index-ordered scan reproduces the
// engine's full sort order (key, then _id).

import "sort"

// sortedEntry is one (key, id) pair of a sorted index. It is comparable,
// which the dead-tombstone set relies on.
type sortedEntry struct {
	key sortKey
	id  string
}

// entryLess is the index order: key, then _id — the same total order the
// sort comparators use, so index scans and in-memory sorts agree on ties.
func entryLess(a, b sortedEntry) bool {
	if c := compareKeys(a.key, b.key); c != 0 {
		return c < 0
	}
	return a.id < b.id
}

// entrySlice implements sort.Interface concretely: index maintenance is on
// the insert path, and sort.Sort on a concrete type avoids sort.Slice's
// reflection-based swaps.
type entrySlice []sortedEntry

func (s entrySlice) Len() int           { return len(s) }
func (s entrySlice) Less(i, j int) bool { return entryLess(s[i], s[j]) }
func (s entrySlice) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// pendingMax is the floor of the pending-buffer merge threshold; the
// effective threshold is max(pendingMax, len(entries)/4) so bulk loading
// merges O(log n) times instead of once per batch.
const pendingMax = 256

// sortedIndex is an ordered index over one field. It has no lock of its
// own: the owning Collection's mu guards it (reads under RLock touch only
// entries/pending/dead without mutating).
type sortedIndex struct {
	field   *fieldPath
	entries []sortedEntry // sorted by (key, id); may contain dead entries
	// pending holds recent adds. It is sorted between mutations (the
	// settleLocked invariant) and bounded by max(pendingMax, entries/4).
	pending []sortedEntry
	// pendingSorted is the length of the sorted prefix of pending; adds
	// grow an unsorted tail that settleLocked folds back in.
	pendingSorted int
	// scratch is the spare buffer the pending merge ping-pongs with, so
	// steady-state settling allocates nothing.
	scratch []sortedEntry
	dead    map[sortedEntry]struct{} // tombstones for entries
}

// EnsureSortedIndex creates an ordered index on a field (idempotent), the
// range-query and sorted-scan counterpart of EnsureIndex. Existing
// documents are indexed immediately; inserts, updates and deletes maintain
// the index from then on.
func (c *Collection) EnsureSortedIndex(field string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sorted == nil {
		c.sorted = map[string]*sortedIndex{}
	}
	if _, ok := c.sorted[field]; ok {
		return
	}
	si := &sortedIndex{field: compilePath(field), dead: map[sortedEntry]struct{}{}}
	si.entries = make([]sortedEntry, 0, len(c.docs))
	for _, d := range c.docs {
		si.entries = append(si.entries, si.entryFor(d))
	}
	sort.Sort(entrySlice(si.entries))
	c.sorted[field] = si
}

// SortedIndexes lists the fields with ordered indexes in sorted order.
func (c *Collection) SortedIndexes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sorted))
	for f := range c.sorted {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// entryFor projects a document onto the index.
func (si *sortedIndex) entryFor(d Document) sortedEntry {
	v, ok := d.lookupFP(si.field)
	return sortedEntry{key: keyOf(v, ok), id: d.ID()}
}

// addLocked registers a document; the collection's write lock is held.
func (si *sortedIndex) addLocked(d Document) {
	si.pending = append(si.pending, si.entryFor(d))
}

// removeLocked unregisters a document. An entry still in the pending
// buffer is removed directly (so dead only ever tombstones merged
// entries); otherwise it is tombstoned for the next merge.
func (si *sortedIndex) removeLocked(d Document) {
	e := si.entryFor(d)
	for i := len(si.pending) - 1; i >= 0; i-- {
		if si.pending[i] == e {
			si.pending = append(si.pending[:i], si.pending[i+1:]...)
			if i < si.pendingSorted {
				si.pendingSorted-- // splicing a sorted-prefix entry keeps order
			}
			return
		}
	}
	si.dead[e] = struct{}{}
}

// settleLocked restores the read invariants after a mutation, before the
// write lock is released: pending is re-sorted (reads fold it in without
// copying), and when pending outgrows max(pendingMax, entries/4) — or dead
// outgrows half of entries — both are merged into entries. The geometric
// pending threshold makes bulk loading cost O(n log n) amortised rather
// than one O(n) merge per insert batch.
func (si *sortedIndex) settleLocked() {
	if si.pendingSorted < len(si.pending) {
		// Sort only the unsorted tail, then merge the two sorted runs into
		// the reused scratch buffer: cheaper than re-sorting the whole
		// buffer every batch, and allocation-free once warm.
		tail := si.pending[si.pendingSorted:]
		sort.Sort(entrySlice(tail))
		if si.pendingSorted > 0 {
			merged := mergeRunsInto(si.scratch[:0], si.pending[:si.pendingSorted], tail)
			si.scratch = si.pending
			si.pending = merged
		}
		si.pendingSorted = len(si.pending)
	}
	limit := pendingMax
	if g := len(si.entries) / 4; g > limit {
		limit = g
	}
	if len(si.pending) <= limit && len(si.dead) <= len(si.entries)/2 {
		return
	}
	si.mergeLocked()
}

// mergeRunsInto merges two sorted runs, appending to out.
func mergeRunsInto(out, a, b []sortedEntry) []sortedEntry {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if entryLess(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeLocked rebuilds entries as the merge of (entries - dead) with the
// already-sorted pending buffer. O(len(entries) + len(pending)).
func (si *sortedIndex) mergeLocked() {
	merged := make([]sortedEntry, 0, len(si.entries)+len(si.pending)-len(si.dead))
	i, j := 0, 0
	for i < len(si.entries) || j < len(si.pending) {
		if i < len(si.entries) {
			if _, gone := si.dead[si.entries[i]]; gone {
				delete(si.dead, si.entries[i])
				i++
				continue
			}
		}
		switch {
		case j >= len(si.pending):
			merged = append(merged, si.entries[i])
			i++
		case i >= len(si.entries):
			merged = append(merged, si.pending[j])
			j++
		case entryLess(si.entries[i], si.pending[j]):
			merged = append(merged, si.entries[i])
			i++
		default:
			merged = append(merged, si.pending[j])
			j++
		}
	}
	si.entries = merged
	si.pending = nil
	si.pendingSorted = 0
	si.scratch = nil
	si.dead = map[sortedEntry]struct{}{}
}

// iterLocked streams the index's live entries in (key, id) order — reverse
// when desc — resolving each to its document, until fn returns false.
// Callers hold at least the read lock; pending is sorted (the settleLocked
// invariant), so the iteration is a plain two-way merge.
func (si *sortedIndex) iterLocked(c *Collection, desc bool, fn func(Document) bool) {
	pend := si.pending
	emit := func(e sortedEntry) bool {
		i, ok := c.byID[e.id]
		if !ok {
			return true // tombstoned out from under us; skip
		}
		return fn(c.docs[i])
	}
	if !desc {
		i, j := 0, 0
		for i < len(si.entries) || j < len(pend) {
			if i < len(si.entries) {
				if _, gone := si.dead[si.entries[i]]; gone {
					i++
					continue
				}
			}
			var e sortedEntry
			switch {
			case j >= len(pend):
				e = si.entries[i]
				i++
			case i >= len(si.entries):
				e = pend[j]
				j++
			case entryLess(si.entries[i], pend[j]):
				e = si.entries[i]
				i++
			default:
				e = pend[j]
				j++
			}
			if !emit(e) {
				return
			}
		}
		return
	}
	i, j := len(si.entries)-1, len(pend)-1
	for i >= 0 || j >= 0 {
		if i >= 0 {
			if _, gone := si.dead[si.entries[i]]; gone {
				i--
				continue
			}
		}
		var e sortedEntry
		switch {
		case j < 0:
			e = si.entries[i]
			i--
		case i < 0:
			e = pend[j]
			j--
		case entryLess(pend[j], si.entries[i]):
			e = si.entries[i]
			i--
		default:
			e = pend[j]
			j--
		}
		if !emit(e) {
			return
		}
	}
}

// Range bounds ----------------------------------------------------------

// keyBounds is a half-open-or-closed interval in the engine's total order.
type keyBounds struct {
	lo, hi       sortKey
	hasLo, hasHi bool
	loInc, hiInc bool
}

// tightenLo/tightenHi intersect a new bound into the interval.
func (b *keyBounds) tightenLo(k sortKey, inclusive bool) {
	if !b.hasLo {
		b.lo, b.loInc, b.hasLo = k, inclusive, true
		return
	}
	switch c := compareKeys(k, b.lo); {
	case c > 0:
		b.lo, b.loInc = k, inclusive
	case c == 0 && !inclusive:
		b.loInc = false
	}
}

func (b *keyBounds) tightenHi(k sortKey, inclusive bool) {
	if !b.hasHi {
		b.hi, b.hiInc, b.hasHi = k, inclusive, true
		return
	}
	switch c := compareKeys(k, b.hi); {
	case c < 0:
		b.hi, b.hiInc = k, inclusive
	case c == 0 && !inclusive:
		b.hiInc = false
	}
}

// contains reports whether a key falls inside the interval.
func (b keyBounds) contains(k sortKey) bool {
	if b.hasLo {
		c := compareKeys(k, b.lo)
		if c < 0 || (c == 0 && !b.loInc) {
			return false
		}
	}
	if b.hasHi {
		c := compareKeys(k, b.hi)
		if c > 0 || (c == 0 && !b.hiInc) {
			return false
		}
	}
	return true
}

// rangeLocked returns the live documents whose index key falls inside the
// bounds, in insertion (storage) order — unsorted Find results follow
// candidate order, and the seed engine's contract is storage order.
// Callers hold at least the read lock and re-check the full filter.
func (si *sortedIndex) rangeLocked(c *Collection, b keyBounds) []Document {
	// Binary-search the sorted entries for the interval.
	lo := 0
	if b.hasLo {
		lo = sort.Search(len(si.entries), func(i int) bool {
			cmp := compareKeys(si.entries[i].key, b.lo)
			if b.loInc {
				return cmp >= 0
			}
			return cmp > 0
		})
	}
	hi := len(si.entries)
	if b.hasHi {
		hi = sort.Search(len(si.entries), func(i int) bool {
			cmp := compareKeys(si.entries[i].key, b.hi)
			if b.hiInc {
				return cmp > 0
			}
			return cmp >= 0
		})
	}
	var positions []int
	for i := lo; i < hi; i++ {
		e := si.entries[i]
		if _, gone := si.dead[e]; gone {
			continue
		}
		if di, ok := c.byID[e.id]; ok {
			positions = append(positions, di)
		}
	}
	for _, e := range si.pending {
		if !b.contains(e.key) {
			continue
		}
		if di, ok := c.byID[e.id]; ok {
			positions = append(positions, di)
		}
	}
	sort.Ints(positions)
	out := make([]Document, len(positions))
	for i, di := range positions {
		out[i] = c.docs[di]
	}
	return out
}

// Planner extraction ----------------------------------------------------

// lookupRangeLocked returns candidate documents via an ordered index when
// the filter is (or its top-level And contains) a range or equality
// predicate on a sorted-indexed field. All predicates on the chosen field
// are folded into one interval; the caller re-checks the full filter.
// Callers hold at least the read lock.
func (c *Collection) lookupRangeLocked(f Filter) ([]Document, bool) {
	if len(c.sorted) == 0 {
		return nil, false
	}
	var preds []cmpFilter
	collectRangePreds(f, &preds)
	for _, p := range preds {
		si, ok := c.sorted[p.field]
		if !ok {
			continue
		}
		var b keyBounds
		for _, q := range preds {
			if q.field != p.field {
				continue
			}
			k := keyOf(q.value, true)
			switch q.op {
			case opEq:
				b.tightenLo(k, true)
				b.tightenHi(k, true)
			case opGt:
				b.tightenLo(k, false)
			case opGte:
				b.tightenLo(k, true)
			case opLt:
				b.tightenHi(k, false)
			case opLte:
				b.tightenHi(k, true)
			}
		}
		return si.rangeLocked(c, b), true
	}
	return nil, false
}

// collectRangePreds gathers indexable comparison predicates: a bare
// cmpFilter, or cmpFilters conjoined by top-level Ands (other conjuncts
// are re-checked by the full filter).
func collectRangePreds(f Filter, out *[]cmpFilter) {
	switch t := unwrapFilter(f).(type) {
	case cmpFilter:
		if t.op != opNe {
			*out = append(*out, t)
		}
	case andFilter:
		for _, sub := range t {
			collectRangePreds(sub, out)
		}
	}
}
