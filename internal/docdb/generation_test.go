package docdb

import (
	"os"
	"path/filepath"
	"testing"
)

// TestGenerationBumpsOnMutations pins the generation contract: every
// mutation moves Generation, destructive mutations also move
// RewriteGeneration, and reads or no-op mutations move neither.
func TestGenerationBumpsOnMutations(t *testing.T) {
	db := MustOpen()
	c := db.Collection("g")
	if c.Generation() != 0 || c.RewriteGeneration() != 0 {
		t.Fatalf("fresh collection generations = %d/%d, want 0/0",
			c.Generation(), c.RewriteGeneration())
	}

	// Pure appends bump Generation only.
	if err := c.Insert(Document{"_id": "a", "v": 1}); err != nil {
		t.Fatal(err)
	}
	g1, r1 := c.Generation(), c.RewriteGeneration()
	if g1 == 0 {
		t.Fatal("Insert did not bump Generation")
	}
	if r1 != 0 {
		t.Fatal("Insert bumped RewriteGeneration")
	}
	if _, err := c.UpsertMany([]Document{{"_id": "b", "v": 2}}); err != nil {
		t.Fatal(err)
	}
	g2, r2 := c.Generation(), c.RewriteGeneration()
	if g2 <= g1 || r2 != 0 {
		t.Fatalf("fresh upsert: gen %d->%d rewrite %d", g1, g2, r2)
	}

	// Reads move nothing.
	c.Find(Query{})
	c.ForEach(Query{}, func(Document) bool { return true })
	c.Get("a")
	if c.Generation() != g2 || c.RewriteGeneration() != 0 {
		t.Fatal("reads moved a generation")
	}

	// A delete that matches nothing is a no-op.
	if n := c.Delete(Eq("v", 999)); n != 0 {
		t.Fatalf("deleted %d", n)
	}
	if c.Generation() != g2 || c.RewriteGeneration() != 0 {
		t.Fatal("no-op delete moved a generation")
	}

	// Destructive mutations bump both.
	if n := c.Update(Eq("_id", "a"), Document{"v": 10}); n != 1 {
		t.Fatalf("updated %d", n)
	}
	g3, r3 := c.Generation(), c.RewriteGeneration()
	if g3 <= g2 || r3 != g3 {
		t.Fatalf("update: gen %d->%d rewrite %d", g2, g3, r3)
	}
	if _, err := c.UpsertMany([]Document{{"_id": "a", "v": 11}}); err != nil {
		t.Fatal(err)
	}
	g4, r4 := c.Generation(), c.RewriteGeneration()
	if g4 <= g3 || r4 != g4 {
		t.Fatalf("replacing upsert: gen %d->%d rewrite %d", g3, g4, r4)
	}
	if n := c.Delete(Eq("_id", "b")); n != 1 {
		t.Fatalf("deleted %d", n)
	}
	g5, r5 := c.Generation(), c.RewriteGeneration()
	if g5 <= g4 || r5 != g5 {
		t.Fatalf("delete: gen %d->%d rewrite %d", g4, g5, r5)
	}
}

// TestGenerationMonotonicAcrossDrop pins the DB-wide stamp property: a
// dropped-and-recreated collection never re-issues a stamp the old
// incarnation handed out (it reads 0 until mutated, then jumps past every
// stamp the DB ever issued).
func TestGenerationMonotonicAcrossDrop(t *testing.T) {
	db := MustOpen()
	c := db.Collection("g")
	for i := 0; i < 5; i++ {
		if err := c.Insert(Document{"v": i}); err != nil {
			t.Fatal(err)
		}
	}
	old := c.Generation()
	db.Drop("g")
	c2 := db.Collection("g")
	if c2.Generation() != 0 {
		t.Fatalf("recreated collection generation = %d, want 0", c2.Generation())
	}
	if err := c2.Insert(Document{"v": 1}); err != nil {
		t.Fatal(err)
	}
	if c2.Generation() <= old {
		t.Fatalf("recreated collection re-issued stamp %d (old incarnation reached %d)",
			c2.Generation(), old)
	}
}

// TestGenerationAfterReplay pins that journal replay counts as mutation:
// a reopened database starts with non-zero generations, so caches built
// against the previous process cannot validate against it.
func TestGenerationAfterReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Collection("g")
	if err := c.InsertMany([]Document{{"_id": "a"}, {"_id": "b"}}); err != nil {
		t.Fatal(err)
	}
	if n := c.Delete(Eq("_id", "b")); n != 1 {
		t.Fatalf("deleted %d", n)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	c2 := db2.Collection("g")
	if c2.Count() != 1 {
		t.Fatalf("replayed %d docs", c2.Count())
	}
	if c2.Generation() == 0 {
		t.Fatal("replayed collection has zero Generation")
	}
	if c2.RewriteGeneration() == 0 {
		t.Fatal("replayed delete did not move RewriteGeneration")
	}
	// The file must still exist (sanity that we exercised the journal path).
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
