package docdb

import (
	"fmt"
	"math"
	"testing"
)

func indexed(t *testing.T) *Collection {
	t.Helper()
	db := MustOpen()
	c := db.Collection("stats")
	docs := make([]Document, 0, 300)
	for i := 0; i < 300; i++ {
		docs = append(docs, Document{
			"_id":     fmt.Sprintf("s%d", i),
			"path_id": fmt.Sprintf("2_%d", i%10),
			"loss":    float64(i % 5),
		})
	}
	if err := c.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	c.EnsureIndex("path_id")
	return c
}

func TestIndexEqualityLookup(t *testing.T) {
	c := indexed(t)
	got := c.Find(Query{Filter: Eq("path_id", "2_3")})
	if len(got) != 30 {
		t.Fatalf("indexed lookup returned %d, want 30", len(got))
	}
	for _, d := range got {
		if d["path_id"] != "2_3" {
			t.Errorf("wrong doc %v", d.ID())
		}
	}
	// Same result as an unindexed field scan.
	unindexed := c.Find(Query{Filter: Eq("loss", 2.0), SortBy: "_id"})
	if len(unindexed) != 60 {
		t.Errorf("scan returned %d, want 60", len(unindexed))
	}
}

func TestIndexWithinAnd(t *testing.T) {
	c := indexed(t)
	got := c.Find(Query{Filter: And(Eq("path_id", "2_3"), Eq("loss", 3.0))})
	// path 2_3 docs are i=3,13,...,293; loss = i%5 == 3 -> i in {3,13,23,...}
	// i%10==3 and i%5==3: i%10==3 implies i%5==3, so all 30 match.
	if len(got) != 30 {
		t.Fatalf("And with index returned %d, want 30", len(got))
	}
	// A conjunct that rules everything out.
	if got := c.Find(Query{Filter: And(Eq("path_id", "2_3"), Eq("loss", 4.0))}); len(got) != 0 {
		t.Errorf("And mismatch returned %d", len(got))
	}
}

func TestIndexMaintainedOnDeleteAndUpdate(t *testing.T) {
	c := indexed(t)
	c.Delete(Eq("path_id", "2_3"))
	if got := c.Find(Query{Filter: Eq("path_id", "2_3")}); len(got) != 0 {
		t.Errorf("index returned %d deleted docs", len(got))
	}
	// Update moves a doc between buckets.
	n := c.Update(Eq("_id", "s4"), Document{"path_id": "2_99"})
	if n != 1 {
		t.Fatalf("updated %d", n)
	}
	if got := c.Find(Query{Filter: Eq("path_id", "2_99")}); len(got) != 1 {
		t.Errorf("moved doc not found via index: %d", len(got))
	}
	for _, d := range c.Find(Query{Filter: Eq("path_id", "2_4")}) {
		if d.ID() == "s4" {
			t.Error("stale index entry for updated doc")
		}
	}
}

func TestIndexCrossTypeNumericEquality(t *testing.T) {
	db := MustOpen()
	c := db.Collection("nums")
	c.Insert(Document{"_id": "a", "v": 6})
	c.Insert(Document{"_id": "b", "v": 6.0})
	c.Insert(Document{"_id": "c", "v": int64(6)})
	c.EnsureIndex("v")
	if got := c.Find(Query{Filter: Eq("v", 6.0)}); len(got) != 3 {
		t.Errorf("cross-type indexed equality returned %d, want 3", len(got))
	}
}

func TestEnsureIndexIdempotentAndListed(t *testing.T) {
	c := indexed(t)
	c.EnsureIndex("path_id")
	c.EnsureIndex("loss")
	idx := c.Indexes()
	if len(idx) != 2 || idx[0] != "loss" || idx[1] != "path_id" {
		t.Errorf("Indexes() = %v", idx)
	}
}

func TestIndexedAndScanAgree(t *testing.T) {
	db := MustOpen()
	plain := db.Collection("plain")
	fast := db.Collection("fast")
	for i := 0; i < 200; i++ {
		d := Document{"_id": fmt.Sprintf("d%d", i), "k": i % 7, "v": i}
		plain.Insert(d)
		fast.Insert(d)
	}
	fast.EnsureIndex("k")
	for k := 0; k < 8; k++ {
		a := plain.Find(Query{Filter: Eq("k", k), SortBy: "_id"})
		b := fast.Find(Query{Filter: Eq("k", k), SortBy: "_id"})
		if len(a) != len(b) {
			t.Fatalf("k=%d: scan %d vs index %d", k, len(a), len(b))
		}
		for i := range a {
			if a[i].ID() != b[i].ID() {
				t.Fatalf("k=%d: result %d differs", k, i)
			}
		}
	}
}

func TestAggregate(t *testing.T) {
	c := indexed(t)
	res := c.Aggregate(nil, "path_id", "loss")
	if len(res) != 10 {
		t.Fatalf("%d groups, want 10", len(res))
	}
	for _, g := range res {
		if g.Count != 30 {
			t.Errorf("group %s count %d", g.Key, g.Count)
		}
		if g.Min > g.Mean || g.Mean > g.Max {
			t.Errorf("group %s stats disordered: %+v", g.Key, g)
		}
	}
	// Sorted by key.
	for i := 1; i < len(res); i++ {
		if res[i].Key < res[i-1].Key {
			t.Fatal("groups not sorted")
		}
	}
	// Filtered aggregation.
	some := c.Aggregate(Eq("loss", 1.0), "path_id", "loss")
	for _, g := range some {
		if g.Mean != 1 {
			t.Errorf("filtered group %s mean %v", g.Key, g.Mean)
		}
	}
}

func TestAggregateMissingValueField(t *testing.T) {
	db := MustOpen()
	c := db.Collection("x")
	c.Insert(Document{"_id": "a", "g": "one"})
	c.Insert(Document{"_id": "b", "g": "one", "v": 4})
	res := c.Aggregate(nil, "g", "v")
	if len(res) != 1 || res[0].Count != 2 {
		t.Fatalf("res %+v", res)
	}
	if res[0].Sum != 4 || math.IsInf(res[0].Min, 1) {
		t.Errorf("partial numeric group: %+v", res[0])
	}
}
