package docdb

// Zero-copy iteration. Find clones every result because its callers hold on
// to the documents; aggregation-style consumers (Aggregate, the selection
// engine, the experiments layer) only *read* a few fields per document, so
// cloning is pure allocation overhead. ForEach gives them a cursor over the
// stored documents under the read lock instead.

// ForEach streams matching documents to fn in query order (the same planner
// and ordering as Find) until fn returns false, and reports how many
// documents fn saw. It runs under the collection's read lock and passes the
// *stored* documents without cloning, so fn must treat them as frozen:
//
//   - fn must not mutate the document or anything reachable from it;
//   - fn must not retain the document (or nested maps/slices) after
//     returning — copy the fields it needs instead;
//   - fn must not call back into the collection or its DB (the read lock is
//     held; Insert/Update/Delete would deadlock and Find would re-enter).
//
// Query.Project is ignored: fn reads fields straight from the document.
func (c *Collection) ForEach(q Query, fn func(Document) bool) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := 0
	for _, d := range c.collectLocked(q) {
		seen++
		if !fn(d) {
			break
		}
	}
	return seen
}
