package docdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func sampleDocs() []Document {
	return []Document{
		{"_id": "1_1", "server_id": 1, "hops": 6, "isds": []any{"16", "17"}, "status": "alive"},
		{"_id": "1_2", "server_id": 1, "hops": 7, "isds": []any{"16", "17", "19"}, "status": "alive"},
		{"_id": "2_1", "server_id": 2, "hops": 6, "isds": []any{"16", "17"}, "status": "timeout"},
		{"_id": "2_2", "server_id": 2, "hops": 8, "isds": []any{"16", "17", "18"}, "status": "alive", "loss": 10.5},
	}
}

func seeded(t *testing.T) *Collection {
	t.Helper()
	db := MustOpen()
	c := db.Collection("paths")
	if err := c.InsertMany(sampleDocs()); err != nil {
		t.Fatal(err)
	}
	return c
}

func ids(docs []Document) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.ID()
	}
	return out
}

func TestInsertAndGet(t *testing.T) {
	c := seeded(t)
	if c.Count() != 4 {
		t.Fatalf("count %d, want 4", c.Count())
	}
	d := c.Get("1_2")
	if d == nil || d["hops"] != 7 {
		t.Fatalf("Get(1_2) = %v", d)
	}
	if c.Get("nope") != nil {
		t.Error("phantom document")
	}
}

func TestInsertDuplicateIDRejectedAtomically(t *testing.T) {
	c := seeded(t)
	err := c.InsertMany([]Document{
		{"_id": "9_1", "hops": 5},
		{"_id": "1_1", "hops": 5}, // duplicate
	})
	if err == nil {
		t.Fatal("duplicate accepted")
	}
	if c.Get("9_1") != nil {
		t.Error("batch was partially applied")
	}
	// Duplicate within the same batch.
	err = c.InsertMany([]Document{{"_id": "x"}, {"_id": "x"}})
	if err == nil {
		t.Fatal("intra-batch duplicate accepted")
	}
}

func TestInsertAutoID(t *testing.T) {
	db := MustOpen()
	c := db.Collection("auto")
	if err := c.InsertMany([]Document{{"v": 1}, {"v": 2}}); err != nil {
		t.Fatal(err)
	}
	docs := c.Find(Query{})
	if len(docs) != 2 || docs[0].ID() == "" || docs[0].ID() == docs[1].ID() {
		t.Errorf("auto ids: %v", ids(docs))
	}
	if err := c.Insert(Document{"_id": 42}); err == nil {
		t.Error("non-string _id accepted")
	}
	if err := c.Insert(nil); err == nil {
		t.Error("nil document accepted")
	}
}

func TestSentinelErrors(t *testing.T) {
	c := seeded(t)
	if err := c.Insert(Document{"_id": "1_1"}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate error not ErrDuplicateID: %v", err)
	}
	if err := c.Insert(nil); !errors.Is(err, ErrBadDocument) {
		t.Errorf("nil error not ErrBadDocument: %v", err)
	}
	if err := c.Insert(Document{"_id": 7}); !errors.Is(err, ErrBadDocument) {
		t.Errorf("bad-id error not ErrBadDocument: %v", err)
	}
}

func TestInsertIsolation(t *testing.T) {
	db := MustOpen()
	c := db.Collection("iso")
	orig := Document{"_id": "a", "nested": map[string]any{"k": 1}}
	if err := c.Insert(orig); err != nil {
		t.Fatal(err)
	}
	orig["mutated"] = true
	got := c.Get("a")
	if _, leaked := got["mutated"]; leaked {
		t.Error("collection aliases caller memory")
	}
	got["alsoMutated"] = true
	if _, leaked := c.Get("a")["alsoMutated"]; leaked {
		t.Error("Get returns aliased memory")
	}
}

func TestFilters(t *testing.T) {
	c := seeded(t)
	cases := []struct {
		name string
		f    Filter
		want []string
	}{
		{"eq", Eq("server_id", 1), []string{"1_1", "1_2"}},
		{"eq-string", Eq("status", "timeout"), []string{"2_1"}},
		{"ne", Ne("status", "alive"), []string{"2_1"}},
		{"gt", Gt("hops", 6), []string{"1_2", "2_2"}},
		{"gte", Gte("hops", 7), []string{"1_2", "2_2"}},
		{"lt", Lt("hops", 7), []string{"1_1", "2_1"}},
		{"lte", Lte("hops", 6), []string{"1_1", "2_1"}},
		{"in", In("hops", 7, 8), []string{"1_2", "2_2"}},
		{"nin", Nin("hops", 6), []string{"1_2", "2_2"}},
		{"exists", Exists("loss", true), []string{"2_2"}},
		{"not-exists", And(Exists("loss", false), Eq("server_id", 2)), []string{"2_1"}},
		{"regex", Regex("_id", `^2_`), []string{"2_1", "2_2"}},
		{"and", And(Eq("server_id", 2), Eq("status", "alive")), []string{"2_2"}},
		{"or", Or(Eq("hops", 8), Eq("status", "timeout")), []string{"2_1", "2_2"}},
		{"not", And(Not(Eq("server_id", 2)), Eq("hops", 6)), []string{"1_1"}},
		{"elem", ElemMatch("isds", "19"), []string{"1_2"}},
		{"elem-none", ElemMatch("isds", "99"), nil},
		{"and-empty", And(), []string{"1_1", "1_2", "2_1", "2_2"}},
		{"or-empty", Or(), nil},
	}
	for _, tc := range cases {
		got := ids(c.Find(Query{Filter: tc.f, SortBy: "_id"}))
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestMissingFieldSemantics(t *testing.T) {
	c := seeded(t)
	// Ne matches documents missing the field, like MongoDB.
	got := ids(c.Find(Query{Filter: Ne("loss", 10.5), SortBy: "_id"}))
	if fmt.Sprint(got) != fmt.Sprint([]string{"1_1", "1_2", "2_1"}) {
		t.Errorf("Ne on missing: %v", got)
	}
	// Gt does not.
	if n := len(c.Find(Query{Filter: Gt("loss", 0)})); n != 1 {
		t.Errorf("Gt on missing matched %d", n)
	}
	// Nin matches missing.
	if n := len(c.Find(Query{Filter: Nin("loss", 10.5)})); n != 3 {
		t.Errorf("Nin on missing matched %d", n)
	}
}

func TestNumericCrossTypeCompare(t *testing.T) {
	db := MustOpen()
	c := db.Collection("nums")
	if err := c.InsertMany([]Document{
		{"_id": "a", "v": 5},
		{"_id": "b", "v": 5.0},
		{"_id": "c", "v": int64(7)},
	}); err != nil {
		t.Fatal(err)
	}
	if n := len(c.Find(Query{Filter: Eq("v", 5.0)})); n != 2 {
		t.Errorf("int/float equality matched %d, want 2", n)
	}
	if n := len(c.Find(Query{Filter: Gt("v", 5)})); n != 1 {
		t.Errorf("Gt matched %d, want 1", n)
	}
}

func TestSortSkipLimitProject(t *testing.T) {
	c := seeded(t)
	docs := c.Find(Query{SortBy: "hops", SortDesc: true, Limit: 2})
	if len(docs) != 2 || docs[0]["hops"] != 8 || docs[1]["hops"] != 7 {
		t.Errorf("sort desc limit: %v", docs)
	}
	docs = c.Find(Query{SortBy: "_id", Skip: 3})
	if len(docs) != 1 || docs[0].ID() != "2_2" {
		t.Errorf("skip: %v", ids(docs))
	}
	docs = c.Find(Query{SortBy: "_id", Skip: 99})
	if len(docs) != 0 {
		t.Errorf("skip past end: %v", ids(docs))
	}
	docs = c.Find(Query{Filter: Eq("_id", "2_2"), Project: []string{"hops", "nope"}})
	if len(docs) != 1 {
		t.Fatal("projection lost the document")
	}
	if docs[0]["hops"] != 8 || docs[0].ID() != "2_2" {
		t.Errorf("projection content: %v", docs[0])
	}
	if _, has := docs[0]["status"]; has {
		t.Error("projection leaked unrequested field")
	}
}

func TestFindOne(t *testing.T) {
	c := seeded(t)
	d := c.FindOne(Query{Filter: Eq("server_id", 2), SortBy: "hops", SortDesc: true})
	if d == nil || d.ID() != "2_2" {
		t.Errorf("FindOne: %v", d)
	}
	if c.FindOne(Query{Filter: Eq("server_id", 99)}) != nil {
		t.Error("FindOne phantom")
	}
}

func TestDistinct(t *testing.T) {
	c := seeded(t)
	got := c.Distinct("status", nil)
	if fmt.Sprint(got) != fmt.Sprint([]string{"alive", "timeout"}) {
		t.Errorf("distinct: %v", got)
	}
	got = c.Distinct("hops", Eq("server_id", 1))
	if fmt.Sprint(got) != fmt.Sprint([]string{"6", "7"}) {
		t.Errorf("distinct filtered: %v", got)
	}
}

func TestDeleteAndUpdate(t *testing.T) {
	c := seeded(t)
	if n := c.Delete(Eq("server_id", 1)); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	if c.Count() != 2 || c.Get("1_1") != nil {
		t.Error("delete incomplete")
	}
	// Index integrity after delete.
	if d := c.Get("2_2"); d == nil || d["hops"] != 8 {
		t.Error("byID index broken after delete")
	}
	if n := c.Update(Eq("_id", "2_1"), Document{"status": "alive", "_id": "evil"}); n != 1 {
		t.Fatalf("updated %d", n)
	}
	d := c.Get("2_1")
	if d == nil || d["status"] != "alive" {
		t.Errorf("update not applied: %v", d)
	}
}

func TestDottedPathLookup(t *testing.T) {
	db := MustOpen()
	c := db.Collection("nested")
	if err := c.Insert(Document{
		"_id":   "n1",
		"stats": map[string]any{"latency": map[string]any{"avg": 42.5}},
	}); err != nil {
		t.Fatal(err)
	}
	if n := len(c.Find(Query{Filter: Gt("stats.latency.avg", 40)})); n != 1 {
		t.Errorf("dotted lookup matched %d", n)
	}
	if n := len(c.Find(Query{Filter: Gt("stats.latency.nope", 40)})); n != 0 {
		t.Errorf("phantom dotted match %d", n)
	}
	if n := len(c.Find(Query{Filter: Gt("stats.latency.avg.too.deep", 40)})); n != 0 {
		t.Errorf("over-deep path matched %d", n)
	}
}

func TestCollectionNamesAndDrop(t *testing.T) {
	db := MustOpen()
	db.Collection("b")
	db.Collection("a")
	if got := db.CollectionNames(); fmt.Sprint(got) != "[a b]" {
		t.Errorf("names: %v", got)
	}
	db.Drop("a")
	if got := db.CollectionNames(); fmt.Sprint(got) != "[b]" {
		t.Errorf("after drop: %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := MustOpen()
	c := db.Collection("conc")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = c.Insert(Document{"_id": fmt.Sprintf("%d_%d", g, i), "g": g})
				_ = c.Find(Query{Filter: Eq("g", g)})
			}
		}()
	}
	wg.Wait()
	if c.Count() != 400 {
		t.Errorf("count %d, want 400", c.Count())
	}
}

// Property: De Morgan — Not(Or(a,b)) == And(Not(a),Not(b)) over random docs.
func TestFilterDeMorganQuick(t *testing.T) {
	f := func(h1, h2, probe uint8) bool {
		d := Document{"hops": int(probe % 12)}
		a := Eq("hops", int(h1%12))
		b := Eq("hops", int(h2%12))
		lhs := Not(Or(a, b)).Match(d)
		rhs := And(Not(a), Not(b)).Match(d)
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: In == Or of Eq; Nin == Not(In).
func TestInOrEquivalenceQuick(t *testing.T) {
	f := func(v1, v2, probe uint8) bool {
		d := Document{"v": int(probe % 10)}
		in := In("v", int(v1%10), int(v2%10)).Match(d)
		or := Or(Eq("v", int(v1%10)), Eq("v", int(v2%10))).Match(d)
		nin := Nin("v", int(v1%10), int(v2%10)).Match(d)
		return in == or && nin == !in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: sorting is total — Find with SortBy never panics and returns all
// documents regardless of mixed value kinds.
func TestSortTotalOverMixedKinds(t *testing.T) {
	db := MustOpen()
	c := db.Collection("mixed")
	docs := []Document{
		{"_id": "a", "v": 1}, {"_id": "b", "v": "s"}, {"_id": "c", "v": true},
		{"_id": "d", "v": nil}, {"_id": "e", "v": 2.5}, {"_id": "f"},
	}
	if err := c.InsertMany(docs); err != nil {
		t.Fatal(err)
	}
	got := c.Find(Query{SortBy: "v"})
	if len(got) != len(docs) {
		t.Errorf("sorted %d of %d docs", len(got), len(docs))
	}
}

func TestUpsertMany(t *testing.T) {
	db := MustOpen()
	c := db.Collection("stats")
	if err := c.Insert(Document{"_id": "a", "v": 1}); err != nil {
		t.Fatal(err)
	}
	replaced, err := c.UpsertMany([]Document{
		{"_id": "a", "v": 2},
		{"_id": "b", "v": 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if replaced != 1 {
		t.Errorf("replaced %d, want 1", replaced)
	}
	if c.Count() != 2 {
		t.Errorf("count %d, want 2", c.Count())
	}
	if d := c.Get("a"); d["v"] != 2 {
		t.Errorf("upsert did not replace: %v", d)
	}
	// Idempotent: a second identical batch replaces everything, adds nothing.
	replaced, err = c.UpsertMany([]Document{{"_id": "a", "v": 2}, {"_id": "b", "v": 3}})
	if err != nil || replaced != 2 || c.Count() != 2 {
		t.Errorf("re-upsert: replaced %d count %d err %v", replaced, c.Count(), err)
	}
	// Rejected batches leave the collection untouched.
	for _, batch := range [][]Document{
		{{"_id": "c", "v": 1}, nil},
		{{"v": 1}},
		{{"_id": "dup"}, {"_id": "dup"}},
	} {
		if _, err := c.UpsertMany(batch); err == nil {
			t.Errorf("bad batch %v accepted", batch)
		}
	}
	if c.Count() != 2 {
		t.Errorf("failed batch mutated the collection: %d docs", c.Count())
	}
}
