package docdb

import (
	"fmt"
	"math/rand"
	"testing"
)

// Index-maintenance churn: a collection with a hash index and ordered
// indexes is driven through randomized InsertMany/UpsertMany/Update/Delete
// rounds — including updates that change an indexed field's value — while a
// shadow model replays the same mutations naively. After every round the
// planner's equality, range and sorted-scan paths must agree with the
// shadow, so stale or duplicated index entries surface immediately. The
// volume crosses pendingMax and the dead-tombstone threshold, so merges of
// the two-level sorted index run mid-test.

// shadow mirrors the engine's documented mutation semantics on a plain
// slice: insertion order preserved, deletes compact, updates in place.
type shadow struct {
	docs []Document
	pos  map[string]int
}

func newShadow() *shadow { return &shadow{pos: map[string]int{}} }

func (s *shadow) insert(docs []Document) {
	for _, d := range docs {
		c := d.Clone()
		s.pos[c.ID()] = len(s.docs)
		s.docs = append(s.docs, c)
	}
}

func (s *shadow) upsert(docs []Document) {
	for _, d := range docs {
		c := d.Clone()
		if i, ok := s.pos[c.ID()]; ok {
			s.docs[i] = c
			continue
		}
		s.pos[c.ID()] = len(s.docs)
		s.docs = append(s.docs, c)
	}
}

func (s *shadow) update(f Filter, set Document) {
	for _, d := range s.docs {
		if !f.Match(d) {
			continue
		}
		for k, v := range set {
			if k == "_id" {
				continue
			}
			d[k] = cloneValue(v)
		}
	}
}

func (s *shadow) delete(f Filter) {
	kept := s.docs[:0]
	for _, d := range s.docs {
		if f.Match(d) {
			continue
		}
		kept = append(kept, d)
	}
	s.docs = kept
	s.pos = make(map[string]int, len(s.docs))
	for i, d := range s.docs {
		s.pos[d.ID()] = i
	}
}

func churnDoc(rng *rand.Rand, id int) Document {
	return Document{
		"_id":     fmt.Sprintf("c%05d", id),
		"path_id": fmt.Sprintf("2_%d", rng.Intn(8)),
		"val":     float64(rng.Intn(1000)) / 4,
		"hops":    rng.Intn(12),
	}
}

func checkAgainstShadow(t *testing.T, round int, col *Collection, s *shadow, rng *rand.Rand) {
	t.Helper()
	queries := []Query{
		{Filter: Eq("path_id", fmt.Sprintf("2_%d", rng.Intn(8))), SortBy: "val"},
		{Filter: And(Gte("val", float64(rng.Intn(200))), Lt("val", float64(50+rng.Intn(200)))), SortBy: "val"},
		{SortBy: "val", Limit: 1 + rng.Intn(20)},
		{SortBy: "val", SortDesc: true, Limit: 1 + rng.Intn(20)},
		{Filter: Gt("val", float64(rng.Intn(250))), SortBy: "val", SortDesc: true, Skip: rng.Intn(4), Limit: 10},
	}
	for qi, q := range queries {
		want := idsOf(naiveQuery(s.docs, q))
		got := idsOf(col.Find(q))
		if len(got) != len(want) {
			t.Fatalf("round %d query %d %+v: got %d docs, shadow %d", round, qi, q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d query %d %+v: position %d = %s, shadow %s", round, qi, q, i, got[i], want[i])
			}
		}
	}
	if col.Count() != len(s.docs) {
		t.Fatalf("round %d: Count %d, shadow %d", round, col.Count(), len(s.docs))
	}
}

func TestIndexMaintenanceUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(1717))
	db := MustOpen()
	col := db.Collection("churn")
	col.EnsureIndex("path_id")
	col.EnsureSortedIndex("val")
	col.EnsureSortedIndex("hops")
	s := newShadow()
	nextID := 0

	batch := func(n int) []Document {
		docs := make([]Document, n)
		for i := range docs {
			docs[i] = churnDoc(rng, nextID)
			nextID++
		}
		return docs
	}

	// Seed enough that the first delete/update rounds work on real volume,
	// and inserts alone cross pendingMax (256) several times.
	seed := batch(600)
	if err := col.InsertMany(seed); err != nil {
		t.Fatal(err)
	}
	s.insert(seed)

	for round := 0; round < 40; round++ {
		switch round % 4 {
		case 0: // insert a fresh batch
			docs := batch(50 + rng.Intn(100))
			if err := col.InsertMany(docs); err != nil {
				t.Fatal(err)
			}
			s.insert(docs)
		case 1: // upsert: half replacements of existing ids, half new
			var docs []Document
			for i := 0; i < 40; i++ {
				d := churnDoc(rng, nextID)
				nextID++
				if i%2 == 0 && len(s.docs) > 0 {
					d["_id"] = s.docs[rng.Intn(len(s.docs))].ID()
				}
				docs = append(docs, d)
			}
			// Dedup ids within the batch (UpsertMany rejects repeats).
			seen := map[string]bool{}
			uniq := docs[:0]
			for _, d := range docs {
				if !seen[d.ID()] {
					seen[d.ID()] = true
					uniq = append(uniq, d)
				}
			}
			if _, err := col.UpsertMany(uniq); err != nil {
				t.Fatal(err)
			}
			s.upsert(uniq)
		case 2: // update changing the *sorted-indexed* field's value
			f := Eq("path_id", fmt.Sprintf("2_%d", rng.Intn(8)))
			set := Document{"val": float64(rng.Intn(1000)) / 4, "hops": rng.Intn(12)}
			n := col.Update(f, set)
			s.update(f, set)
			matched := 0
			for _, d := range s.docs {
				if f.Match(d) {
					matched++
				}
			}
			if n != matched {
				t.Fatalf("round %d: Update reported %d, shadow matched %d", round, n, matched)
			}
		case 3: // range delete on the sorted-indexed field
			f := And(Gte("val", float64(rng.Intn(200))), Lt("val", float64(rng.Intn(100))+200))
			before := len(s.docs)
			n := col.Delete(f)
			s.delete(f)
			if n != before-len(s.docs) {
				t.Fatalf("round %d: Delete reported %d, shadow removed %d", round, n, before-len(s.docs))
			}
		}
		checkAgainstShadow(t, round, col, s, rng)
	}
}

// TestSortedIndexListedSeparately pins the listing contract: hash and
// ordered indexes are separate namespaces.
func TestSortedIndexListedSeparately(t *testing.T) {
	db := MustOpen()
	col := db.Collection("c")
	col.EnsureIndex("a")
	col.EnsureSortedIndex("b")
	col.EnsureSortedIndex("b") // idempotent
	if got := col.Indexes(); len(got) != 1 || got[0] != "a" {
		t.Fatalf("Indexes() = %v, want [a]", got)
	}
	if got := col.SortedIndexes(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("SortedIndexes() = %v, want [b]", got)
	}
}

// TestEnsureSortedIndexOnExistingDocs verifies an index built after inserts
// serves ordered scans over the pre-existing documents.
func TestEnsureSortedIndexOnExistingDocs(t *testing.T) {
	db := MustOpen()
	col := db.Collection("c")
	for i := 0; i < 50; i++ {
		if err := col.Insert(Document{"_id": fmt.Sprintf("d%02d", i), "v": (i * 37) % 50}); err != nil {
			t.Fatal(err)
		}
	}
	col.EnsureSortedIndex("v")
	got := col.Find(Query{SortBy: "v", Limit: 5})
	for i, d := range got {
		if v, _ := d["v"].(int); v != i {
			t.Fatalf("position %d: v = %v, want %d", i, d["v"], i)
		}
	}
}

// TestRangeQueryMissingFieldSemantics pins that documents lacking the
// filtered field stay excluded from range results when a sorted index
// serves the query (the index keys them as nil; the bounds must not).
func TestRangeQueryMissingFieldSemantics(t *testing.T) {
	db := MustOpen()
	withIdx := db.Collection("i")
	plain := db.Collection("p")
	docs := []Document{
		{"_id": "a", "v": 1},
		{"_id": "b"}, // no v
		{"_id": "c", "v": 10},
		{"_id": "d", "v": "s"}, // string sorts after numbers
	}
	for _, col := range []*Collection{withIdx, plain} {
		if err := col.InsertMany(docs); err != nil {
			t.Fatal(err)
		}
	}
	withIdx.EnsureSortedIndex("v")
	for _, f := range []Filter{Gt("v", 0), Lt("v", 5), Gte("v", 1), Lte("v", 100), Eq("v", 10)} {
		want := idsOf(plain.Find(Query{Filter: f, SortBy: "_id"}))
		got := idsOf(withIdx.Find(Query{Filter: f, SortBy: "_id"}))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("filter %+v: indexed %v, plain %v", f, got, want)
		}
	}
}
