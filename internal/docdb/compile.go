package docdb

// Query compilation: the hot-path machinery that lets Find, Delete, Update,
// ForEach, sort comparators and Aggregate evaluate a query without
// re-splitting dotted field paths or re-dispatching on `any` per document.
//
// Three layers:
//
//   - fieldPath: a dotted path pre-split into segments, interned in a
//     process-wide cache (paths come from a small schema vocabulary, so the
//     cache stays tiny and every collection shares the compiled form).
//   - sortKey: a value mapped into the engine's total order (the order
//     compareValues defines), so sorting and range scans compare flat
//     structs instead of re-inspecting interface values.
//   - compileMatch: a filter tree compiled into a closure tree with
//     pre-resolved paths and type-specialised comparators.

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// fieldPath is a compiled dotted field path. segs is nil for the common
// single-segment case, where lookup is one map access.
type fieldPath struct {
	raw  string
	segs []string
}

// pathCache interns compiled paths process-wide (path -> *fieldPath). The
// vocabulary is the document schema, a few dozen strings, so the cache is
// effectively bounded.
var pathCache sync.Map

// compilePath returns the interned compiled form of a dotted path.
func compilePath(path string) *fieldPath {
	if v, ok := pathCache.Load(path); ok {
		return v.(*fieldPath)
	}
	fp := &fieldPath{raw: path}
	if strings.Contains(path, ".") {
		fp.segs = strings.Split(path, ".")
	}
	v, _ := pathCache.LoadOrStore(path, fp)
	return v.(*fieldPath)
}

// lookupFP resolves a compiled field path within the document.
func (d Document) lookupFP(fp *fieldPath) (any, bool) {
	if fp.segs == nil {
		v, ok := d[fp.raw]
		return v, ok
	}
	cur := any(d)
	for _, part := range fp.segs {
		switch m := cur.(type) {
		case Document:
			v, ok := m[part]
			if !ok {
				return nil, false
			}
			cur = v
		case map[string]any:
			v, ok := m[part]
			if !ok {
				return nil, false
			}
			cur = v
		default:
			return nil, false
		}
	}
	return cur, true
}

// Total-order sort keys ------------------------------------------------

// Kind ranks mirror kindName's ordering so compareKeys agrees with
// compareValues on every pair of values.
const (
	kindNil    uint8 = 0
	kindBool   uint8 = 1
	kindNumber uint8 = 2
	kindString uint8 = 3
	kindOther  uint8 = 9
)

// sortKey is a document value projected into the engine's total order:
// ordered by kind rank first, then by the kind's own value. For kindOther
// the str field holds the Go type name, matching compareValues' fallback
// (two values of the same non-scalar type compare equal).
type sortKey struct {
	kind uint8
	b    bool
	num  float64
	str  string
}

// keyOf projects a looked-up value into the total order. A missing field
// (ok == false) keys as nil, which is also how the sort comparators treat
// it. NaN numbers are unsupported (documents are JSON-compatible).
func keyOf(v any, ok bool) sortKey {
	if !ok || v == nil {
		return sortKey{kind: kindNil}
	}
	if f, isNum := toFloat(v); isNum {
		return sortKey{kind: kindNumber, num: f}
	}
	switch t := v.(type) {
	case string:
		return sortKey{kind: kindString, str: t}
	case bool:
		return sortKey{kind: kindBool, b: t}
	default:
		return sortKey{kind: kindOther, str: fmt.Sprintf("%T", v)}
	}
}

// compareKeys orders two sort keys; it agrees with compareValues for every
// pair of document values.
func compareKeys(a, b sortKey) int {
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case kindNumber:
		return cmpFloat(a.num, b.num)
	case kindString, kindOther:
		return strings.Compare(a.str, b.str)
	case kindBool:
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		}
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// canonicalNumber renders a float with the shortest round-trip form; the
// hash index and Aggregate share it so 6, 6.0 and int64(6) — and 1e6 vs
// 1000000 — land in the same bucket/group.
func canonicalNumber(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Filter compilation ---------------------------------------------------

// matchFn is a compiled filter: one closure call per document.
type matchFn func(Document) bool

// compiledFilter carries a compiled matcher alongside the source tree (the
// planner inspects the source to pick indexes).
type compiledFilter struct {
	src Filter
	fn  matchFn
}

// Match implements Filter.
func (c *compiledFilter) Match(d Document) bool { return c.fn(d) }

// CompileFilter returns a filter with pre-split field paths and
// type-specialised comparators. Find, ForEach, Delete, Update and
// Aggregate compile their filter once per call; callers that reuse one
// filter across many queries can pre-compile it with this. Compiling an
// already-compiled filter is a no-op, and nil stays nil.
func CompileFilter(f Filter) Filter {
	if f == nil {
		return nil
	}
	if c, ok := f.(*compiledFilter); ok {
		return c
	}
	return &compiledFilter{src: f, fn: compileMatch(f)}
}

// matchAll is the compiled form of a nil filter.
func matchAll(Document) bool { return true }

// compileMatch compiles a filter tree into a closure tree. Unknown filter
// implementations (FilterFunc, user types) fall back to their Match method.
func compileMatch(f Filter) matchFn {
	switch t := f.(type) {
	case nil:
		return matchAll
	case *compiledFilter:
		return t.fn
	case cmpFilter:
		return compileCmp(t)
	case inFilter:
		return compileIn(t)
	case existsFilter:
		fp := compilePath(t.field)
		want := t.want
		return func(d Document) bool {
			_, ok := d.lookupFP(fp)
			return ok == want
		}
	case regexFilter:
		fp := compilePath(t.field)
		re := t.re
		return func(d Document) bool {
			v, ok := d.lookupFP(fp)
			if !ok {
				return false
			}
			s, ok := v.(string)
			if !ok {
				s = fmt.Sprint(v)
			}
			return re.MatchString(s)
		}
	case andFilter:
		subs := make([]matchFn, len(t))
		for i, sub := range t {
			subs[i] = compileMatch(sub)
		}
		return func(d Document) bool {
			for _, m := range subs {
				if !m(d) {
					return false
				}
			}
			return true
		}
	case orFilter:
		subs := make([]matchFn, len(t))
		for i, sub := range t {
			subs[i] = compileMatch(sub)
		}
		return func(d Document) bool {
			for _, m := range subs {
				if m(d) {
					return true
				}
			}
			return false
		}
	case notFilter:
		sub := compileMatch(t.f)
		return func(d Document) bool { return !sub(d) }
	default:
		return f.Match
	}
}

// compileCmp specialises a comparison filter on its value's type: numeric
// and string comparisons skip the generic compareValues dispatch entirely
// for same-kind document values.
func compileCmp(t cmpFilter) matchFn {
	fp := compilePath(t.field)
	op := t.op
	value := t.value
	if num, isNum := toFloat(value); isNum {
		return func(d Document) bool {
			v, ok := d.lookupFP(fp)
			if !ok {
				return op == opNe
			}
			if x, xok := toFloat(v); xok {
				return evalOp(op, cmpFloat(x, num))
			}
			return evalOp(op, compareValues(v, value))
		}
	}
	if str, isStr := value.(string); isStr {
		return func(d Document) bool {
			v, ok := d.lookupFP(fp)
			if !ok {
				return op == opNe
			}
			if s, sok := v.(string); sok {
				return evalOp(op, strings.Compare(s, str))
			}
			return evalOp(op, compareValues(v, value))
		}
	}
	return func(d Document) bool {
		v, ok := d.lookupFP(fp)
		if !ok {
			return op == opNe
		}
		return evalOp(op, compareValues(v, value))
	}
}

// compileIn pre-keys the value set: membership becomes one keyOf plus a
// map probe instead of len(values) compareValues calls.
func compileIn(t inFilter) matchFn {
	fp := compilePath(t.field)
	negate := t.negate
	keys := make(map[sortKey]bool, len(t.values))
	for _, w := range t.values {
		keys[keyOf(w, true)] = true
	}
	return func(d Document) bool {
		v, ok := d.lookupFP(fp)
		if !ok {
			return negate
		}
		if keys[keyOf(v, true)] {
			return !negate
		}
		return negate
	}
}

// evalOp applies a comparison operator to a three-way comparison result.
func evalOp(op cmpOp, c int) bool {
	switch op {
	case opEq:
		return c == 0
	case opNe:
		return c != 0
	case opGt:
		return c > 0
	case opGte:
		return c >= 0
	case opLt:
		return c < 0
	case opLte:
		return c <= 0
	}
	return false
}

// unwrapFilter strips the compiled wrapper so the planner sees the source
// tree.
func unwrapFilter(f Filter) Filter {
	if c, ok := f.(*compiledFilter); ok {
		return c.src
	}
	return f
}
