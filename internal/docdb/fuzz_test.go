package docdb

import (
	"testing"
)

// FuzzCompileFilter is a differential fuzzer: the fuzz input is decoded
// deterministically into a filter tree and a batch of documents, and the
// compiled matcher must agree with the naive interface evaluator on every
// one of them. Unlike the seeded oracle tests this explores the corners the
// generator's fixed pools miss by construction — cross-type comparisons
// (int vs float64 vs string vs bool vs nil), dotted paths through non-map
// values, empty And/Or, double negation, filters on missing fields.

// fuzzWalker consumes fuzz bytes one decision at a time; an exhausted input
// yields zeros, so every byte string decodes to something valid.
type fuzzWalker struct {
	data []byte
	pos  int
}

func (w *fuzzWalker) next() byte {
	if w.pos >= len(w.data) {
		return 0
	}
	b := w.data[w.pos]
	w.pos++
	return b
}

// pick returns next() reduced to [0, n).
func (w *fuzzWalker) pick(n int) int { return int(w.next()) % n }

// The field pool mixes flat names, dotted paths (including one that dives
// through a non-map on some documents), _id and a never-present field.
var fuzzFields = []string{"a", "b", "s", "ok", "arr", "n.x", "n.y.z", "a.x", "_id", "ghost"}

// The value pool deliberately spans types: the compiled comparators
// specialise on the query value's type and must degrade to the generic
// compareValues semantics when the document side differs. No NaN — the pool
// is for equivalence testing, not for pinning NaN ordering.
var fuzzValues = []any{
	nil, 0, 1, -1, int(7), int64(7), float64(7), 7.5, -2.25, 1e6,
	"", "x", "seven", "2_3", true, false,
}

// Valid patterns only: Regex panics on bad patterns by contract.
var fuzzPatterns = []string{"^s", "e.en", "^$", "[0-9]+", "x|y"}

func (w *fuzzWalker) field() string { return fuzzFields[w.pick(len(fuzzFields))] }
func (w *fuzzWalker) value() any    { return fuzzValues[w.pick(len(fuzzValues))] }

// filter decodes one filter tree node. Depth is bounded so adversarial
// inputs cannot build towers of Not; breadth (And/Or arity, In set size) is
// 0-3, covering the empty-combinator identities.
func (w *fuzzWalker) filter(depth int) Filter {
	kind := w.pick(13)
	if depth <= 0 && kind >= 9 {
		kind %= 9
	}
	switch kind {
	case 0:
		return Eq(w.field(), w.value())
	case 1:
		return Ne(w.field(), w.value())
	case 2:
		return Gt(w.field(), w.value())
	case 3:
		return Gte(w.field(), w.value())
	case 4:
		return Lt(w.field(), w.value())
	case 5:
		return Lte(w.field(), w.value())
	case 6:
		values := make([]any, w.pick(4))
		for i := range values {
			values[i] = w.value()
		}
		return In(w.field(), values...)
	case 7:
		values := make([]any, w.pick(4))
		for i := range values {
			values[i] = w.value()
		}
		return Nin(w.field(), values...)
	case 8:
		return Exists(w.field(), w.pick(2) == 0)
	case 9:
		return Regex(w.field(), fuzzPatterns[w.pick(len(fuzzPatterns))])
	case 10:
		subs := make([]Filter, w.pick(4))
		for i := range subs {
			subs[i] = w.filter(depth - 1)
		}
		return And(subs...)
	case 11:
		subs := make([]Filter, w.pick(4))
		for i := range subs {
			subs[i] = w.filter(depth - 1)
		}
		return Or(subs...)
	default:
		return Not(w.filter(depth - 1))
	}
}

// document decodes one document over the same field/value pools the filters
// draw from, so matches are common. Each optional field flips on its own
// byte; "a" sometimes holds a scalar where a filter probes the path "a.x".
func (w *fuzzWalker) document(i int) Document {
	d := Document{"_id": fuzzValues[10+w.pick(4)].(string) + string(rune('a'+i%26))}
	if w.pick(2) == 0 {
		d["a"] = w.value()
	}
	if w.pick(2) == 0 {
		d["b"] = w.value()
	}
	if w.pick(2) == 0 {
		d["s"] = fuzzValues[10+w.pick(4)]
	}
	if w.pick(2) == 0 {
		d["ok"] = w.pick(2) == 0
	}
	if w.pick(2) == 0 {
		arr := make([]any, w.pick(3))
		for j := range arr {
			arr[j] = w.value()
		}
		d["arr"] = arr
	}
	switch w.pick(3) {
	case 0:
		d["n"] = Document{"x": w.value(), "y": Document{"z": w.value()}}
	case 1:
		d["n"] = w.value() // scalar where filters expect a map
	}
	return d
}

func FuzzCompileFilter(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte("\x0a\x03\x00\x05\x0c\x0c\x01\x09\x02seed"))
	f.Add([]byte{12, 12, 12, 10, 0, 11, 0, 6, 3, 1, 2, 3, 7, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		w := &fuzzWalker{data: data}
		filter := w.filter(3)
		docs := make([]Document, 4)
		for i := range docs {
			docs[i] = w.document(i)
		}

		compiled := CompileFilter(filter)
		if again := CompileFilter(compiled); again != compiled {
			t.Fatal("CompileFilter is not idempotent")
		}
		for i, d := range docs {
			naive := filter.Match(d)
			if got := compiled.Match(d); got != naive {
				t.Fatalf("doc %d %v: compiled=%v naive=%v for filter %#v", i, d, got, naive, filter)
			}
			// Matching must not mutate state: a second evaluation agrees.
			if got := compiled.Match(d); got != naive {
				t.Fatalf("doc %d: compiled matcher unstable across calls", i)
			}
		}
	})
}
