package docdb

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestJournalConcurrentAppend drives the §4.2.2 fault-tolerant batch path
// from many goroutines at once: concurrent InsertMany batches interleaved
// with Flush and Compact. Run under -race (the verify.sh tier-2 pass does)
// this is the regression proof that the journal pointer and the buffered
// writer are properly serialized — the seed tree raced DB.Close/Compact's
// journal swap against InsertMany's append.
func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	const (
		writers = 8
		batches = 25
		perB    = 4
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := db.Collection("events")
			for b := 0; b < batches; b++ {
				docs := make([]Document, perB)
				for i := range docs {
					docs[i] = Document{
						"_id":    fmt.Sprintf("w%d-b%d-i%d", w, b, i),
						"writer": w,
						"batch":  b,
					}
				}
				if err := c.InsertMany(docs); err != nil {
					t.Errorf("InsertMany: %v", err)
					return
				}
				if b%5 == 0 {
					if err := db.Flush(); err != nil {
						t.Errorf("Flush: %v", err)
						return
					}
				}
			}
		}(w)
	}
	// Compact concurrently with the writers: the journal swap must not race
	// the appends.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := db.Compact(); err != nil {
				t.Errorf("Compact: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	want := writers * batches * perB
	if got := db.Collection("events").Count(); got != want {
		t.Fatalf("in-memory count = %d, want %d", got, want)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen and replay: every batch journaled before the final flush must
	// survive. Compaction plus Close's flush means everything survives.
	db2, err := Open(WithPath(path))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() {
		if err := db2.Close(); err != nil {
			t.Errorf("close reopened db: %v", err)
		}
	}()
	if got := db2.Collection("events").Count(); got != want {
		t.Fatalf("replayed count = %d, want %d", got, want)
	}
}

// TestCloseConcurrentWithInsert pins the exact seed-tree race: Close swaps
// the journal pointer while writers are mid-append. The data outcome is
// unspecified (late appends may hit the closed journal) but there must be
// no torn pointer read — -race fails on the seed code.
func TestCloseConcurrentWithInsert(t *testing.T) {
	path := filepath.Join(t.TempDir(), "race.jsonl")
	db, err := Open(WithPath(path))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := db.Collection("c")
			for i := 0; i < 50; i++ {
				// Errors are fine once the journal is closed; only the
				// race-detector verdict matters here.
				_ = c.Insert(Document{"_id": fmt.Sprintf("w%d-%d", w, i)})
			}
		}(w)
	}
	if err := db.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	wg.Wait()
}
