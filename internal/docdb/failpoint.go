package docdb

// Fault injection for chaos testing (see docs/CHAOS.md). A Failpoint lets a
// test harness make the storage engine fail on demand — batch writes that
// error before touching any state, journal replay that stops early as if the
// file had been truncated — without changing the engine's own code paths.
// Production databases never set one: every hook site is a single nil check
// on a field that is read under a lock the operation already holds, so the
// fast path costs nothing measurable (the BenchmarkDocDB* baselines gate
// this).

// Failpoint injects storage faults. Implementations must be safe for
// concurrent use; the engine may consult one hook from many writers at once.
type Failpoint interface {
	// BeforeWrite is consulted by InsertMany and UpsertMany after the batch
	// has been validated but before any document is stored or journaled. op
	// is "insert" or "upsert". Returning a non-nil error aborts the whole
	// batch atomically: the collection, its indexes and the journal are left
	// exactly as they were.
	BeforeWrite(collection, op string, batch int) error

	// ReplayEntry is consulted once per journal entry during OpenFileWith
	// replay, before the entry is applied; n counts entries from zero.
	// Returning false stops replay at that point, as if the journal had been
	// truncated there — the standard crash model the chaos harness uses.
	ReplayEntry(n int, op string) bool
}

// SetFailpoint installs (or, with nil, removes) the database's failpoint.
// Install before sharing the DB with writers; the pointer is guarded by the
// DB lock the write paths already take.
func (db *DB) SetFailpoint(fp Failpoint) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.failpoint = fp
}

// OpenFileWith is OpenFile with a failpoint installed before replay, so
// ReplayEntry can simulate a truncated journal and BeforeWrite is armed from
// the first write. fp may be nil, which is exactly OpenFile.
func OpenFileWith(path string, fp Failpoint) (*DB, error) {
	db := Open()
	db.failpoint = fp // no lock needed: the DB is not shared yet
	if err := db.replay(path); err != nil {
		return nil, err
	}
	return db.attachJournal(path)
}
