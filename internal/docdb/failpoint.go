package docdb

// Fault injection for chaos testing (see docs/CHAOS.md). A Failpoint lets a
// test harness make the storage engine fail on demand — batch writes that
// error before touching any state, log replay that stops early as if the
// file had been truncated — without changing the engine's own code paths.
// The contract is backend-agnostic: BeforeWrite fires in the engine before
// any state or backend is touched, and every Backend implementation
// consults ReplayEntry once per replayed record (see Backend.Replay), so
// chaos fault plans run unchanged against jsonl and segment storage.
// Production databases never set one: every hook site is a single nil check
// on a field that is read under a lock the operation already holds, so the
// fast path costs nothing measurable (the BenchmarkDocDB* baselines gate
// this).

// Failpoint injects storage faults. Implementations must be safe for
// concurrent use; the engine may consult one hook from many writers at once.
type Failpoint interface {
	// BeforeWrite is consulted by InsertMany and UpsertMany after the batch
	// has been validated but before any document is stored or logged. op is
	// "insert" or "upsert". Returning a non-nil error aborts the whole
	// batch atomically: the collection, its indexes and the backend log are
	// left exactly as they were.
	BeforeWrite(collection, op string, batch int) error

	// ReplayEntry is consulted once per log record during replay (install
	// the failpoint with WithFailpoint so it is armed before Open replays),
	// before the record is applied; n counts records from zero, in the
	// backend's replay order — chronological for jsonl, shard-by-shard for
	// segment. Returning false stops replay at that point, as if the log
	// had been truncated there — the standard crash model the chaos
	// harness uses. The file itself is left untouched.
	ReplayEntry(n int, op string) bool
}

// SetFailpoint installs (or, with nil, removes) the database's failpoint.
// Install before sharing the DB with writers; the pointer is guarded by the
// DB lock the write paths already take.
func (db *DB) SetFailpoint(fp Failpoint) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.failpoint = fp
}
