package docdb

// The storage backend seam. A DB persists through a Backend: an append-only
// mutation log that can be replayed on open and atomically checkpointed to
// the current state. Two implementations ship in-tree:
//
//   - jsonlBackend (jsonl.go): one JSON object per line, human-greppable,
//     the reference implementation and the historical on-disk format;
//   - segmentBackend (segment.go, wal.go): length-prefixed binary records
//     with per-record CRC32, one segment file per collection (so writers on
//     different collections never serialize on one file), group-commit
//     fsync batching, and online per-collection compaction.
//
// Engine code never touches files: collection write paths append Records
// under their own locks, Open replays whatever the backend streams back,
// and Compact hands the backend a snapshot emitter. Adding a backend means
// implementing Backend (plus one of the checkpointer extensions) and
// registering it in openBackend; the conformance suite
// (conformance_test.go) is the contract executable.

import (
	"fmt"
	"os"
)

// Record is one mutation of the persistence log — the unit a Backend
// appends, replays and checkpoints. Exactly one of Doc/ID is meaningful
// depending on Op.
type Record struct {
	// Op is "insert" (Doc set), "delete" (ID set) or "drop" (whole
	// collection).
	Op         string
	Collection string
	// Doc is the stored document of an insert. The engine encodes each
	// stored document exactly once per mutation: backends serialize Doc
	// straight into their write buffer and must not retain it.
	Doc Document
	// ID is the deleted document's _id.
	ID string
	// Replace marks an insert that overwrites an existing _id (update and
	// upsert journaling).
	Replace bool
}

// Backend is the persistence seam behind a DB. Implementations must be safe
// for concurrent use: collection write paths call Append/Commit from many
// goroutines at once, concurrently with Flush. Replay is called exactly
// once, before the DB is shared, and arms the append side; Append before
// Replay is undefined.
//
// Append must be cheap and non-blocking (buffer, don't sync): it runs under
// the collection write lock. Errors are sticky — a failed Append poisons
// the backend and the error surfaces on the next Commit/Flush/Close, the
// same contract a buffered writer gives.
type Backend interface {
	// Name identifies the backend ("jsonl", "segment").
	Name() string
	// Path is the backing file (jsonl) or directory (segment).
	Path() string
	// Replay streams the persisted log into apply in log order, consulting
	// fp.ReplayEntry (when fp is non-nil) once per record. A physically
	// torn tail — a crash's partial final record — is truncated away, so
	// subsequent appends can never merge into damaged bytes; an injected
	// (failpoint) stop leaves the file untouched.
	Replay(fp Failpoint, apply func(Record)) error
	// Append buffers one mutation record. Called under engine locks.
	Append(rec Record)
	// Commit is the per-batch durability point, called by every mutating
	// operation after its records are appended. Under SyncOnFlush it is a
	// no-op; under SyncGroupCommit it returns once the appended records are
	// on stable storage, coalescing concurrent callers into shared fsyncs.
	Commit() error
	// Flush forces all buffered records to stable storage.
	Flush() error
	// Close flushes and releases the backing files.
	Close() error
}

// LogCheckpointer is the whole-log compaction extension: the backend
// atomically replaces its entire log with the emitted snapshot. DB.Compact
// uses it stop-the-world (the DB write lock is held across snap), which is
// all a single-file log can offer.
type LogCheckpointer interface {
	CheckpointLog(snap func(emit func(Record) error) error) error
}

// CollectionCheckpointer is the online compaction extension for backends
// that shard their log per collection. DB.Compact rewrites one collection
// at a time — snap emits that collection's live documents while the engine
// holds only that collection's read lock, so readers are never blocked and
// writers only wait for their own collection's rewrite. DropStaleShards
// then removes shards whose collection no longer exists (live reports
// whether a collection name is still present).
type CollectionCheckpointer interface {
	CheckpointCollection(name string, snap func(emit func(Record) error) error) error
	DropStaleShards(live func(name string) bool) error
}

// SyncPolicy selects when committed batches reach stable storage.
type SyncPolicy int

const (
	// SyncOnFlush (the default) makes data durable at explicit Flush,
	// Close and Compact points only — the measurement runner's contract: a
	// crash costs at most the batches since the last Flush.
	SyncOnFlush SyncPolicy = iota
	// SyncGroupCommit makes every mutating call durable before it returns.
	// Backends amortize the cost by group commit: concurrent batches share
	// one fsync per commit window instead of paying one each.
	SyncGroupCommit
)

// Backend names accepted by WithBackend and the --docdb-backend flags.
const (
	BackendJSONL   = "jsonl"
	BackendSegment = "segment"
)

// Options configures Open. The zero value is a purely in-memory database.
type Options struct {
	// Path is the persistence location: a JSONL journal file (jsonl) or a
	// segment directory (segment). Empty means in-memory, no backend.
	Path string
	// Backend names the storage backend ("jsonl" or "segment"). Empty
	// auto-detects: an existing segment directory opens as segment,
	// anything else (including a fresh path) as jsonl, so pre-redesign
	// journals keep opening unchanged.
	Backend string
	// Sync is the durability policy for mutating operations.
	Sync SyncPolicy
	// Failpoint is installed before replay, so ReplayEntry can truncate
	// the log and BeforeWrite is armed from the first write (chaos
	// testing; see failpoint.go).
	Failpoint Failpoint
}

// Option mutates Options functional-options style.
type Option func(*Options)

// WithPath persists the database at path (see Options.Path).
func WithPath(path string) Option { return func(o *Options) { o.Path = path } }

// WithBackend selects the storage backend by name (see Options.Backend).
func WithBackend(name string) Option { return func(o *Options) { o.Backend = name } }

// WithSyncPolicy sets the durability policy for mutating operations.
func WithSyncPolicy(p SyncPolicy) Option { return func(o *Options) { o.Sync = p } }

// WithFailpoint installs fp before replay (see Options.Failpoint).
func WithFailpoint(fp Failpoint) Option { return func(o *Options) { o.Failpoint = fp } }

// resolveBackend turns an Options backend name plus path into a concrete
// backend name, sniffing existing on-disk state when the name is empty.
func resolveBackend(name, path string) (string, error) {
	st, statErr := os.Stat(path)
	switch name {
	case "":
		if statErr == nil && st.IsDir() {
			return BackendSegment, nil
		}
		return BackendJSONL, nil
	case BackendJSONL:
		if statErr == nil && st.IsDir() {
			return "", fmt.Errorf("docdb: %s is a segment directory, not a jsonl journal", path)
		}
		return BackendJSONL, nil
	case BackendSegment:
		if statErr == nil && !st.IsDir() {
			return "", fmt.Errorf("docdb: %s is a jsonl journal file, not a segment directory", path)
		}
		return BackendSegment, nil
	default:
		return "", fmt.Errorf("docdb: unknown backend %q (have %q, %q)", name, BackendJSONL, BackendSegment)
	}
}

// openBackend constructs the named backend for path. The backend is not
// replayed yet; Open calls Replay before sharing the DB.
func openBackend(o Options) (Backend, error) {
	name, err := resolveBackend(o.Backend, o.Path)
	if err != nil {
		return nil, err
	}
	switch name {
	case BackendJSONL:
		return newJSONLBackend(o.Path, o.Sync), nil
	default:
		return newSegmentBackend(o.Path, o.Sync)
	}
}

// TruncateLogTail damages the persisted log at path the way a crash's lost
// page-cache suffix would, for fault-injection harnesses (the chaos
// harness's truncateTail contract, docs/CHAOS.md). marker is a string that
// must survive — typically the campaign metadata document id — and maxCut
// arms the cut (<= 0 is a no-op). The damage model is format-aware:
//
//   - jsonl: up to maxCut bytes are cut off the file's tail, but never at
//     or past the end of the line containing marker. A cut mid-line is
//     fine — replay truncates the torn final line by design.
//   - segment: every shard drops its entire uncommitted suffix (bytes past
//     its last commit marker), but never past the record containing
//     marker. Committed bytes survive because the commit marker was
//     written by an fsync — cutting them would un-happen durability and
//     let a checkpoint outlive statistics it was ordered after.
//
// It refuses (returns an error) when marker appears nowhere in the log:
// cutting a log that never recorded the campaign identity would destroy
// state a real crash cannot lose.
func TruncateLogTail(path, marker string, maxCut int) error {
	if maxCut <= 0 {
		return nil
	}
	st, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("docdb: truncate %s: %w", path, err)
	}
	if st.IsDir() {
		return truncateSegmentTail(path, marker)
	}
	return truncateJSONLTail(path, marker, maxCut)
}
