// Package docdb is an embedded document database standing in for the
// MongoDB instance of the paper's architecture (§4.2.1). It keeps the
// properties the paper chose MongoDB for: named collections of
// heterogeneous JSON-like documents, flexible addition of new metrics,
// batched multi-document insertion (the fault-tolerance/scalability
// trade-off of §4.2.2), and a query surface with filters, sorting,
// projection and indexes. Persistence is an append-only JSONL journal that
// can be replayed on open, so a crash costs at most the unflushed batch.
package docdb

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Sentinel errors for errors.Is checks.
var (
	// ErrDuplicateID reports an insert whose _id already exists.
	ErrDuplicateID = errors.New("duplicate _id")
	// ErrBadDocument reports a structurally invalid document (nil, or a
	// non-string _id).
	ErrBadDocument = errors.New("invalid document")
)

// Document is one record in a collection. Values are JSON-compatible:
// string, float64, int, int64, bool, nil, []any, map[string]any, or nested
// Documents. Field paths in queries use dots ("stats.avg_latency_ms").
type Document map[string]any

// Clone returns a deep copy of the document (one level of nesting for maps
// and slices, which covers everything this system stores).
func (d Document) Clone() Document {
	out := make(Document, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case Document:
		return t.Clone()
	case map[string]any:
		return Document(t).Clone()
	case []any:
		c := make([]any, len(t))
		for i, e := range t {
			c[i] = cloneValue(e)
		}
		return c
	case []string:
		c := make([]string, len(t))
		copy(c, t)
		return c
	default:
		return v
	}
}

// lookup resolves a dotted field path within the document.
func (d Document) lookup(path string) (any, bool) {
	cur := any(d)
	for _, part := range strings.Split(path, ".") {
		switch m := cur.(type) {
		case Document:
			v, ok := m[part]
			if !ok {
				return nil, false
			}
			cur = v
		case map[string]any:
			v, ok := m[part]
			if !ok {
				return nil, false
			}
			cur = v
		default:
			return nil, false
		}
	}
	return cur, true
}

// ID returns the document's "_id" field as a string, or "".
func (d Document) ID() string {
	if v, ok := d["_id"].(string); ok {
		return v
	}
	return ""
}

// DB is a set of named collections guarded for concurrent use.
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	journal     *journal // nil for purely in-memory databases
}

// Open creates an in-memory database.
func Open() *DB {
	return &DB{collections: make(map[string]*Collection)}
}

// Collection returns the named collection, creating it on first use, like
// MongoDB's implicit collection creation.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = &Collection{name: name, byID: make(map[string]int), db: db}
		db.collections[name] = c
	}
	return c
}

// CollectionNames lists existing collections in sorted order.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a collection and its documents.
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.collections, name)
	if db.journal != nil {
		db.journal.append(journalEntry{Op: "drop", Collection: name})
	}
}

// Collection is a named set of documents with an "_id" unique key. The
// fields above mu are immutable after creation; mu guards everything below
// it (the layout lockcheck enforces).
type Collection struct {
	name string
	db   *DB

	mu      sync.RWMutex
	docs    []Document
	byID    map[string]int
	seq     int64 // auto-id counter
	indexes map[string]*index
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Count returns the number of documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Insert stores one document. Documents without an "_id" get a generated
// one. Inserting a duplicate "_id" is an error.
func (c *Collection) Insert(doc Document) error {
	return c.InsertMany([]Document{doc})
}

// InsertMany stores a batch atomically: either every document is inserted
// or none. This is the paper's "multiple insertions of path statistics"
// I/O-overhead optimisation (§4.2.2).
func (c *Collection) InsertMany(docs []Document) error {
	// The DB read-lock is held across the whole operation so Compact's
	// journal swap (which holds the write lock for snapshot + swap) can
	// never interleave between the in-memory mutation and its journal
	// append — a committed batch is always captured by either the snapshot
	// or the journal, never dropped between them.
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	j := c.db.journal
	c.mu.Lock()
	defer c.mu.Unlock()
	// Validate the whole batch first (atomicity).
	ids := make([]string, len(docs))
	seen := make(map[string]bool, len(docs))
	seq := c.seq
	for i, doc := range docs {
		if doc == nil {
			return fmt.Errorf("docdb: %s: nil document in batch: %w", c.name, ErrBadDocument)
		}
		id := doc.ID()
		if id == "" {
			if raw, ok := doc["_id"]; ok && raw != nil {
				return fmt.Errorf("docdb: %s: non-string _id %v: %w", c.name, raw, ErrBadDocument)
			}
			seq++
			id = fmt.Sprintf("%s-%d", c.name, seq)
		}
		if _, dup := c.byID[id]; dup || seen[id] {
			return fmt.Errorf("docdb: %s: %w %q", c.name, ErrDuplicateID, id)
		}
		seen[id] = true
		ids[i] = id
	}
	c.seq = seq
	for i, doc := range docs {
		stored := doc.Clone()
		stored["_id"] = ids[i]
		c.byID[ids[i]] = len(c.docs)
		c.docs = append(c.docs, stored)
		c.indexAddLocked(stored)
		if j != nil {
			j.append(journalEntry{Op: "insert", Collection: c.name, Doc: stored})
		}
	}
	return nil
}

// UpsertMany stores a batch atomically, replacing any existing document
// with the same _id. Unlike InsertMany it requires every document to carry
// an explicit string _id (replacement is meaningless for generated ids).
// It returns how many documents replaced an existing one. This is the
// idempotent batch path the campaign engine uses when resuming: a cell
// re-measured after a crash writes byte-identical documents over the
// partial batch instead of failing on ErrDuplicateID.
func (c *Collection) UpsertMany(docs []Document) (replaced int, err error) {
	// Same lock discipline as InsertMany: the DB read-lock spans mutation +
	// journal append so Compact can never drop a committed batch.
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	j := c.db.journal
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]bool, len(docs))
	for _, doc := range docs {
		if doc == nil {
			return 0, fmt.Errorf("docdb: %s: nil document in batch: %w", c.name, ErrBadDocument)
		}
		id := doc.ID()
		if id == "" {
			return 0, fmt.Errorf("docdb: %s: upsert requires an explicit _id: %w", c.name, ErrBadDocument)
		}
		if seen[id] {
			return 0, fmt.Errorf("docdb: %s: %w %q within batch", c.name, ErrDuplicateID, id)
		}
		seen[id] = true
	}
	for _, doc := range docs {
		stored := doc.Clone()
		id := stored.ID()
		if i, ok := c.byID[id]; ok {
			c.indexRemoveLocked(c.docs[i])
			c.docs[i] = stored
			c.indexAddLocked(stored)
			replaced++
			if j != nil {
				j.append(journalEntry{Op: "insert", Collection: c.name, Doc: stored, Replace: true})
			}
			continue
		}
		c.byID[id] = len(c.docs)
		c.docs = append(c.docs, stored)
		c.indexAddLocked(stored)
		if j != nil {
			j.append(journalEntry{Op: "insert", Collection: c.name, Doc: stored})
		}
	}
	return replaced, nil
}

// Get returns the document with the given _id, or nil.
func (c *Collection) Get(id string) Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i, ok := c.byID[id]; ok {
		return c.docs[i].Clone()
	}
	return nil
}

// Delete removes documents matching the filter and returns how many.
func (c *Collection) Delete(f Filter) int {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	j := c.db.journal
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.docs[:0]
	removed := 0
	for _, d := range c.docs {
		if f != nil && f.Match(d) {
			removed++
			c.indexRemoveLocked(d)
			if j != nil {
				j.append(journalEntry{Op: "delete", Collection: c.name, ID: d.ID()})
			}
			continue
		}
		kept = append(kept, d)
	}
	c.docs = kept
	c.byID = make(map[string]int, len(c.docs))
	for i, d := range c.docs {
		c.byID[d.ID()] = i
	}
	return removed
}

// Update replaces the non-_id fields of matching documents with the merge
// of the existing document and set, returning how many changed.
func (c *Collection) Update(f Filter, set Document) int {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	j := c.db.journal
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for i, d := range c.docs {
		if f != nil && !f.Match(d) {
			continue
		}
		c.indexRemoveLocked(d)
		for k, v := range set {
			if k == "_id" {
				continue
			}
			d[k] = cloneValue(v)
		}
		c.docs[i] = d
		c.indexAddLocked(d)
		n++
		if j != nil {
			j.append(journalEntry{Op: "insert", Collection: c.name, Doc: d, Replace: true})
		}
	}
	return n
}

// Find runs a query and returns matching documents (deep copies).
func (c *Collection) Find(q Query) []Document {
	c.mu.RLock()
	matched := make([]Document, 0, 16)
	if candidates, ok := c.lookupIndexedLocked(q.Filter); ok {
		// Index narrowed the scan; re-check the full filter (the index may
		// cover only one conjunct of an And).
		for _, d := range candidates {
			if q.Filter.Match(d) {
				matched = append(matched, d)
			}
		}
	} else {
		for _, d := range c.docs {
			if q.Filter == nil || q.Filter.Match(d) {
				matched = append(matched, d)
			}
		}
	}
	c.mu.RUnlock()

	if q.SortBy != "" {
		asc := !q.SortDesc
		sort.SliceStable(matched, func(i, j int) bool {
			vi, _ := matched[i].lookup(q.SortBy)
			vj, _ := matched[j].lookup(q.SortBy)
			less := compareValues(vi, vj) < 0
			if asc {
				return less
			}
			return compareValues(vi, vj) > 0
		})
	}
	if q.Skip > 0 {
		if q.Skip >= len(matched) {
			matched = nil
		} else {
			matched = matched[q.Skip:]
		}
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	out := make([]Document, len(matched))
	for i, d := range matched {
		if len(q.Project) > 0 {
			p := Document{"_id": d.ID()}
			for _, field := range q.Project {
				if v, ok := d.lookup(field); ok {
					p[field] = cloneValue(v)
				}
			}
			out[i] = p
		} else {
			out[i] = d.Clone()
		}
	}
	return out
}

// FindOne returns the first match of the query, or nil.
func (c *Collection) FindOne(q Query) Document {
	q.Limit = 1
	res := c.Find(q)
	if len(res) == 0 {
		return nil
	}
	return res[0]
}

// Distinct returns the sorted distinct values of a field among matching
// documents, rendered as strings.
func (c *Collection) Distinct(field string, f Filter) []string {
	set := map[string]bool{}
	for _, d := range c.Find(Query{Filter: f}) {
		if v, ok := d.lookup(field); ok {
			set[fmt.Sprint(v)] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Query combines a filter with result shaping.
type Query struct {
	Filter   Filter
	SortBy   string
	SortDesc bool
	Skip     int
	Limit    int
	// Project restricts returned fields (plus _id).
	Project []string
}

// Filter matches documents.
type Filter interface {
	Match(Document) bool
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(Document) bool

// Match implements Filter.
func (f FilterFunc) Match(d Document) bool { return f(d) }

type cmpOp int

const (
	opEq cmpOp = iota
	opNe
	opGt
	opGte
	opLt
	opLte
)

type cmpFilter struct {
	field string
	op    cmpOp
	value any
}

func (f cmpFilter) Match(d Document) bool {
	v, ok := d.lookup(f.field)
	if !ok {
		// Missing fields only match $ne, like MongoDB.
		return f.op == opNe
	}
	c := compareValues(v, f.value)
	switch f.op {
	case opEq:
		return c == 0
	case opNe:
		return c != 0
	case opGt:
		return c > 0
	case opGte:
		return c >= 0
	case opLt:
		return c < 0
	case opLte:
		return c <= 0
	}
	return false
}

// Eq matches field == value.
func Eq(field string, value any) Filter { return cmpFilter{field, opEq, value} }

// Ne matches field != value (including missing fields).
func Ne(field string, value any) Filter { return cmpFilter{field, opNe, value} }

// Gt matches field > value.
func Gt(field string, value any) Filter { return cmpFilter{field, opGt, value} }

// Gte matches field >= value.
func Gte(field string, value any) Filter { return cmpFilter{field, opGte, value} }

// Lt matches field < value.
func Lt(field string, value any) Filter { return cmpFilter{field, opLt, value} }

// Lte matches field <= value.
func Lte(field string, value any) Filter { return cmpFilter{field, opLte, value} }

type inFilter struct {
	field  string
	values []any
	negate bool
}

func (f inFilter) Match(d Document) bool {
	v, ok := d.lookup(f.field)
	if !ok {
		return f.negate
	}
	for _, w := range f.values {
		if compareValues(v, w) == 0 {
			return !f.negate
		}
	}
	return f.negate
}

// In matches documents whose field equals any of the values.
func In(field string, values ...any) Filter { return inFilter{field, values, false} }

// Nin matches documents whose field equals none of the values.
func Nin(field string, values ...any) Filter { return inFilter{field, values, true} }

type existsFilter struct {
	field string
	want  bool
}

func (f existsFilter) Match(d Document) bool {
	_, ok := d.lookup(f.field)
	return ok == f.want
}

// Exists matches documents that have (or, want=false, lack) the field.
func Exists(field string, want bool) Filter { return existsFilter{field, want} }

type regexFilter struct {
	field string
	re    *regexp.Regexp
}

func (f regexFilter) Match(d Document) bool {
	v, ok := d.lookup(f.field)
	if !ok {
		return false
	}
	s, ok := v.(string)
	if !ok {
		s = fmt.Sprint(v)
	}
	return f.re.MatchString(s)
}

// Regex matches string fields against a compiled pattern. It panics on an
// invalid pattern (programming error, like regexp.MustCompile).
func Regex(field, pattern string) Filter {
	return regexFilter{field, regexp.MustCompile(pattern)}
}

type andFilter []Filter

func (fs andFilter) Match(d Document) bool {
	for _, f := range fs {
		if !f.Match(d) {
			return false
		}
	}
	return true
}

// And matches documents satisfying every sub-filter; And() matches all.
func And(fs ...Filter) Filter { return andFilter(fs) }

type orFilter []Filter

func (fs orFilter) Match(d Document) bool {
	for _, f := range fs {
		if f.Match(d) {
			return true
		}
	}
	return false
}

// Or matches documents satisfying at least one sub-filter; Or() matches none.
func Or(fs ...Filter) Filter { return orFilter(fs) }

type notFilter struct{ f Filter }

func (n notFilter) Match(d Document) bool { return !n.f.Match(d) }

// Not inverts a filter.
func Not(f Filter) Filter { return notFilter{f} }

// ElemMatch matches documents whose array field contains at least one
// element equal to value (used for ISD-set membership queries).
func ElemMatch(field string, value any) Filter {
	return FilterFunc(func(d Document) bool {
		v, ok := d.lookup(field)
		if !ok {
			return false
		}
		switch arr := v.(type) {
		case []any:
			for _, e := range arr {
				if compareValues(e, value) == 0 {
					return true
				}
			}
		case []string:
			for _, e := range arr {
				if compareValues(e, value) == 0 {
					return true
				}
			}
		}
		return false
	})
}

// compareValues orders mixed scalar values: numbers numerically, strings
// lexically, booleans false<true; mismatched kinds order by kind name so
// sorting is total and stable.
func compareValues(a, b any) int {
	na, aNum := toFloat(a)
	nb, bNum := toFloat(b)
	if aNum && bNum {
		switch {
		case na < nb:
			return -1
		case na > nb:
			return 1
		default:
			return 0
		}
	}
	sa, aStr := a.(string)
	sb, bStr := b.(string)
	if aStr && bStr {
		return strings.Compare(sa, sb)
	}
	ba, aBool := a.(bool)
	bb, bBool := b.(bool)
	if aBool && bBool {
		switch {
		case !ba && bb:
			return -1
		case ba && !bb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(kindName(a), kindName(b))
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case float32:
		return float64(t), true
	case int:
		return float64(t), true
	case int32:
		return float64(t), true
	case int64:
		return float64(t), true
	case uint:
		return float64(t), true
	case uint64:
		return float64(t), true
	default:
		return 0, false
	}
}

func kindName(v any) string {
	switch v.(type) {
	case nil:
		return "0nil"
	case bool:
		return "1bool"
	case float64, float32, int, int32, int64, uint, uint64:
		return "2number"
	case string:
		return "3string"
	default:
		return fmt.Sprintf("9%T", v)
	}
}
