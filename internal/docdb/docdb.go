// Package docdb is an embedded document database standing in for the
// MongoDB instance of the paper's architecture (§4.2.1). It keeps the
// properties the paper chose MongoDB for: named collections of
// heterogeneous JSON-like documents, flexible addition of new metrics,
// batched multi-document insertion (the fault-tolerance/scalability
// trade-off of §4.2.2), and a query surface with filters, sorting,
// projection, hash and ordered indexes. Queries are compiled — field paths
// pre-split and comparators type-specialised — and planned against the
// collection's indexes (see docs/DOCDB.md). Persistence goes through a
// pluggable storage backend (see backend.go): an append-only mutation log
// replayed on open — the greppable JSONL journal or the CRC-framed binary
// segment store — so a crash costs at most the unflushed batch.
package docdb

import (
	"errors"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sentinel errors for errors.Is checks.
var (
	// ErrDuplicateID reports an insert whose _id already exists.
	ErrDuplicateID = errors.New("duplicate _id")
	// ErrBadDocument reports a structurally invalid document (nil, or a
	// non-string _id).
	ErrBadDocument = errors.New("invalid document")
)

// Document is one record in a collection. Values are JSON-compatible:
// string, float64, int, int64, bool, nil, []any, map[string]any, or nested
// Documents. Field paths in queries use dots ("stats.avg_latency_ms").
type Document map[string]any

// Clone returns a deep copy of the document (one level of nesting for maps
// and slices, which covers everything this system stores).
func (d Document) Clone() Document {
	out := make(Document, len(d))
	for k, v := range d {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case Document:
		return t.Clone()
	case map[string]any:
		return Document(t).Clone()
	case []any:
		c := make([]any, len(t))
		for i, e := range t {
			c[i] = cloneValue(e)
		}
		return c
	case []string:
		c := make([]string, len(t))
		copy(c, t)
		return c
	default:
		return v
	}
}

// lookup resolves a dotted field path within the document via the compiled
// path cache.
func (d Document) lookup(path string) (any, bool) {
	return d.lookupFP(compilePath(path))
}

// ID returns the document's "_id" field as a string, or "".
func (d Document) ID() string {
	if v, ok := d["_id"].(string); ok {
		return v
	}
	return ""
}

// DB is a set of named collections guarded for concurrent use.
type DB struct {
	// genSeq issues generation stamps to every collection of this DB. It is
	// atomic (not guarded by mu) and deliberately DB-wide: a collection that
	// is dropped and re-created keeps drawing strictly increasing stamps, so
	// a cached reader can never mistake the new collection for the old one.
	genSeq atomic.Int64

	mu          sync.RWMutex
	collections map[string]*Collection
	backend     Backend   // nil for purely in-memory databases
	failpoint   Failpoint // nil outside chaos testing (see failpoint.go)
}

// Open creates a database. With no options it is purely in-memory; with
// WithPath it persists through a storage backend (WithBackend selects
// which; an existing log's format is auto-detected), replaying any
// existing log so a restarted test-suite continues with its data — the
// fault-tolerance requirement of §4.1.2.
func Open(opts ...Option) (*DB, error) {
	var o Options
	for _, fn := range opts {
		fn(&o)
	}
	db := &DB{collections: make(map[string]*Collection)}
	// Open runs before the DB is shared, so the guarded fields are writable
	// without the lock here.
	//lint:ignore lockcheck Open runs before the DB is shared, no concurrent access is possible
	db.failpoint = o.Failpoint
	if o.Path == "" {
		if o.Backend != "" {
			return nil, fmt.Errorf("docdb: backend %q requires a path (WithPath)", o.Backend)
		}
		return db, nil
	}
	b, err := openBackend(o)
	if err != nil {
		return nil, err
	}
	if err := b.Replay(o.Failpoint, db.applyReplay); err != nil {
		return nil, err
	}
	//lint:ignore lockcheck Open runs before the DB is shared, no concurrent access is possible
	db.backend = b
	return db, nil
}

// MustOpen is Open for call sites that cannot fail — in-memory databases
// and test fixtures — panicking on error.
func MustOpen(opts ...Option) *DB {
	db, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// Collection returns the named collection, creating it on first use, like
// MongoDB's implicit collection creation.
func (db *DB) Collection(name string) *Collection {
	db.mu.Lock()
	defer db.mu.Unlock()
	c, ok := db.collections[name]
	if !ok {
		c = &Collection{name: name, byID: make(map[string]int), db: db}
		db.collections[name] = c
	}
	return c
}

// CollectionNames lists existing collections in sorted order.
func (db *DB) CollectionNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.collections))
	for n := range db.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Drop removes a collection and its documents. Under SyncGroupCommit a
// commit failure is not reported here (sticky backend errors surface on
// the next Flush/Close).
func (db *DB) Drop(name string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.collections, name)
	if db.backend != nil {
		db.backend.Append(Record{Op: "drop", Collection: name})
		_ = db.backend.Commit()
	}
}

// Collection is a named set of documents with an "_id" unique key. The
// fields above mu are immutable after creation; mu guards everything below
// it (the layout lockcheck enforces).
type Collection struct {
	name string
	db   *DB
	// gen and rewriteGen are the collection's mutation generations. They are
	// atomic — readable without the lock — and are stamped while the write
	// lock is still held, so a reader that observes a stamp and then takes
	// the read lock sees at least that mutation's data.
	gen        atomic.Int64
	rewriteGen atomic.Int64

	mu      sync.RWMutex
	docs    []Document
	byID    map[string]int
	seq     int64 // auto-id counter
	indexes map[string]*index
	sorted  map[string]*sortedIndex
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Generation returns a cheap monotonic stamp that changes on every mutation
// of the collection (insert, upsert, update, delete, journal replay). Two
// equal stamps bracket an unchanged collection, so a cache can validate a
// snapshot with one atomic load instead of re-reading the data. Stamps are
// issued DB-wide: a dropped-and-recreated collection never repeats a stamp
// it handed out before (a fresh collection reads 0 until its first
// mutation).
func (c *Collection) Generation() int64 { return c.gen.Load() }

// RewriteGeneration changes only on mutations that rewrite or remove
// existing documents (Update, Delete, upsert replacement, replayed
// replacements/deletes). While it is unchanged the collection has only
// grown by appended inserts, which is what lets an incremental consumer —
// e.g. the selection engine's snapshot cache — fold just the new tail into
// running aggregates instead of rebuilding from scratch.
func (c *Collection) RewriteGeneration() int64 { return c.rewriteGen.Load() }

// bumpLocked stamps a completed mutation while the caller still holds the
// write lock; destructive marks mutations that rewrote or removed existing
// documents.
func (c *Collection) bumpLocked(destructive bool) {
	g := c.db.genSeq.Add(1)
	if destructive {
		c.rewriteGen.Store(g)
	}
	c.gen.Store(g)
}

// Count returns the number of documents.
func (c *Collection) Count() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.docs)
}

// Insert stores one document. Documents without an "_id" get a generated
// one. Inserting a duplicate "_id" is an error.
func (c *Collection) Insert(doc Document) error {
	return c.InsertMany([]Document{doc})
}

// InsertMany stores a batch atomically: either every document is inserted
// or none. This is the paper's "multiple insertions of path statistics"
// I/O-overhead optimisation (§4.2.2).
func (c *Collection) InsertMany(docs []Document) error {
	// The DB read-lock is held across the whole operation so a Compact log
	// swap (which holds the write lock for snapshot + swap) can never
	// interleave between the in-memory mutation and its backend append — a
	// committed batch is always captured by either the snapshot or the
	// log, never dropped between them.
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	b, fp := c.db.backend, c.db.failpoint
	c.mu.Lock()
	defer c.mu.Unlock()
	// Validate the whole batch first (atomicity).
	ids := make([]string, len(docs))
	seen := make(map[string]bool, len(docs))
	seq := c.seq
	for i, doc := range docs {
		if doc == nil {
			return fmt.Errorf("docdb: %s: nil document in batch: %w", c.name, ErrBadDocument)
		}
		id := doc.ID()
		if id == "" {
			if raw, ok := doc["_id"]; ok && raw != nil {
				return fmt.Errorf("docdb: %s: non-string _id %v: %w", c.name, raw, ErrBadDocument)
			}
			seq++
			id = fmt.Sprintf("%s-%d", c.name, seq)
		}
		if _, dup := c.byID[id]; dup || seen[id] {
			return fmt.Errorf("docdb: %s: %w %q", c.name, ErrDuplicateID, id)
		}
		seen[id] = true
		ids[i] = id
	}
	if fp != nil {
		if err := fp.BeforeWrite(c.name, "insert", len(docs)); err != nil {
			return fmt.Errorf("docdb: %s: insert: %w", c.name, err)
		}
	}
	c.seq = seq
	for i, doc := range docs {
		stored := doc.Clone()
		stored["_id"] = ids[i]
		c.byID[ids[i]] = len(c.docs)
		c.docs = append(c.docs, stored)
		c.indexAddLocked(stored)
		if b != nil {
			b.Append(Record{Op: "insert", Collection: c.name, Doc: stored})
		}
	}
	c.maybeMergeSortedLocked()
	if len(docs) > 0 {
		c.bumpLocked(false)
		if b != nil {
			if err := b.Commit(); err != nil {
				return fmt.Errorf("docdb: %s: insert: commit: %w", c.name, err)
			}
		}
	}
	return nil
}

// UpsertMany stores a batch atomically, replacing any existing document
// with the same _id. Unlike InsertMany it requires every document to carry
// an explicit string _id (replacement is meaningless for generated ids).
// It returns how many documents replaced an existing one. This is the
// idempotent batch path the campaign engine uses when resuming: a cell
// re-measured after a crash writes byte-identical documents over the
// partial batch instead of failing on ErrDuplicateID.
func (c *Collection) UpsertMany(docs []Document) (replaced int, err error) {
	// Same lock discipline as InsertMany: the DB read-lock spans mutation +
	// backend append so Compact can never drop a committed batch.
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	b, fp := c.db.backend, c.db.failpoint
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := make(map[string]bool, len(docs))
	for _, doc := range docs {
		if doc == nil {
			return 0, fmt.Errorf("docdb: %s: nil document in batch: %w", c.name, ErrBadDocument)
		}
		id := doc.ID()
		if id == "" {
			return 0, fmt.Errorf("docdb: %s: upsert requires an explicit _id: %w", c.name, ErrBadDocument)
		}
		if seen[id] {
			return 0, fmt.Errorf("docdb: %s: %w %q within batch", c.name, ErrDuplicateID, id)
		}
		seen[id] = true
	}
	if fp != nil {
		if err := fp.BeforeWrite(c.name, "upsert", len(docs)); err != nil {
			return 0, fmt.Errorf("docdb: %s: upsert: %w", c.name, err)
		}
	}
	for _, doc := range docs {
		stored := doc.Clone()
		id := stored.ID()
		if i, ok := c.byID[id]; ok {
			c.indexRemoveLocked(c.docs[i])
			c.docs[i] = stored
			c.indexAddLocked(stored)
			replaced++
			if b != nil {
				b.Append(Record{Op: "insert", Collection: c.name, Doc: stored, Replace: true})
			}
			continue
		}
		c.byID[id] = len(c.docs)
		c.docs = append(c.docs, stored)
		c.indexAddLocked(stored)
		if b != nil {
			b.Append(Record{Op: "insert", Collection: c.name, Doc: stored})
		}
	}
	c.maybeMergeSortedLocked()
	if len(docs) > 0 {
		c.bumpLocked(replaced > 0)
		if b != nil {
			if err := b.Commit(); err != nil {
				return replaced, fmt.Errorf("docdb: %s: upsert: commit: %w", c.name, err)
			}
		}
	}
	return replaced, nil
}

// Get returns the document with the given _id, or nil.
func (c *Collection) Get(id string) Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i, ok := c.byID[id]; ok {
		return c.docs[i].Clone()
	}
	return nil
}

// Delete removes documents matching the filter and returns how many. A nil
// filter deletes nothing.
func (c *Collection) Delete(f Filter) int {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	b := c.db.backend
	c.mu.Lock()
	defer c.mu.Unlock()
	if f == nil {
		return 0
	}
	// Plan: narrow to index candidates when possible (candidates are a
	// superset of matches, so documents outside them need no check).
	match := compileMatch(f)
	src := unwrapFilter(f)
	doomed := make(map[string]bool)
	cands, planned := c.lookupIndexedLocked(src)
	if !planned {
		cands, planned = c.lookupRangeLocked(src)
	}
	if !planned {
		cands = c.docs
	}
	for _, d := range cands {
		if match(d) {
			doomed[d.ID()] = true
		}
	}
	if len(doomed) == 0 {
		// Nothing matched: leave docs and the byID map untouched instead
		// of rebuilding them.
		return 0
	}
	kept := c.docs[:0]
	for _, d := range c.docs {
		if doomed[d.ID()] {
			c.indexRemoveLocked(d)
			if b != nil {
				b.Append(Record{Op: "delete", Collection: c.name, ID: d.ID()})
			}
			continue
		}
		kept = append(kept, d)
	}
	c.docs = kept
	c.byID = make(map[string]int, len(c.docs))
	for i, d := range c.docs {
		c.byID[d.ID()] = i
	}
	c.maybeMergeSortedLocked()
	c.bumpLocked(true)
	if b != nil {
		// Sticky commit errors surface on the next Flush/Close (Delete's
		// signature predates the backend split).
		_ = b.Commit()
	}
	return len(doomed)
}

// Update replaces the non-_id fields of matching documents with the merge
// of the existing document and set, returning how many changed. A nil
// filter updates every document.
func (c *Collection) Update(f Filter, set Document) int {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	b := c.db.backend
	c.mu.Lock()
	defer c.mu.Unlock()
	match := compileMatch(f)
	var positions []int
	cands, planned := c.lookupIndexedLocked(unwrapFilter(f))
	if !planned {
		cands, planned = c.lookupRangeLocked(unwrapFilter(f))
	}
	if planned {
		for _, d := range cands {
			if match(d) {
				positions = append(positions, c.byID[d.ID()])
			}
		}
		sort.Ints(positions) // journal in document order, like a scan
	} else {
		for i, d := range c.docs {
			if match(d) {
				positions = append(positions, i)
			}
		}
	}
	for _, i := range positions {
		d := c.docs[i]
		c.indexRemoveLocked(d)
		for k, v := range set {
			if k == "_id" {
				continue
			}
			d[k] = cloneValue(v)
		}
		c.indexAddLocked(d)
		if b != nil {
			b.Append(Record{Op: "insert", Collection: c.name, Doc: d, Replace: true})
		}
	}
	c.maybeMergeSortedLocked()
	if len(positions) > 0 {
		c.bumpLocked(true)
		if b != nil {
			// As in Delete: commit errors are sticky, reported at Flush/Close.
			_ = b.Commit()
		}
	}
	return len(positions)
}

// Find runs a query and returns matching documents (deep copies). Results
// with SortBy are ordered by the sort field in the engine's total order,
// ties broken by _id (reversed as a whole under SortDesc), so query results
// are deterministic and index-ordered scans agree with in-memory sorts.
func (c *Collection) Find(q Query) []Document {
	c.mu.RLock()
	defer c.mu.RUnlock()
	refs := c.collectLocked(q)
	var proj []*fieldPath
	if len(q.Project) > 0 {
		proj = make([]*fieldPath, len(q.Project))
		for i, f := range q.Project {
			proj[i] = compilePath(f)
		}
	}
	out := make([]Document, len(refs))
	for i, d := range refs {
		if proj != nil {
			p := Document{"_id": d.ID()}
			for _, fp := range proj {
				if v, ok := d.lookupFP(fp); ok {
					p[fp.raw] = cloneValue(v)
				}
			}
			out[i] = p
		} else {
			out[i] = d.Clone()
		}
	}
	return out
}

// FindOne returns the first match of the query, or nil.
func (c *Collection) FindOne(q Query) Document {
	q.Limit = 1
	res := c.Find(q)
	if len(res) == 0 {
		return nil
	}
	return res[0]
}

// collectLocked is the query planner: it returns matching document
// references in query order with Skip/Limit applied. Plans, in order:
// hash-index equality, ordered-index range, ordered-index sorted scan,
// full scan. Index candidates are always re-checked against the full
// filter (an index may cover only one conjunct of an And). Callers hold at
// least mu.RLock; the returned documents are the stored ones, not clones.
func (c *Collection) collectLocked(q Query) []Document {
	match := compileMatch(q.Filter)
	src := unwrapFilter(q.Filter)
	if cands, ok := c.lookupIndexedLocked(src); ok {
		return c.shapeLocked(cands, q, match)
	}
	if cands, ok := c.lookupRangeLocked(src); ok {
		return c.shapeLocked(cands, q, match)
	}
	if q.SortBy != "" {
		if si, ok := c.sorted[q.SortBy]; ok {
			return c.orderedScanLocked(si, q, match)
		}
	}
	return c.shapeLocked(c.docs, q, match)
}

// shapeLocked filters candidates and applies sort, skip and limit. With a
// sort and a limit it keeps a top-K heap of skip+limit items instead of
// sorting every match; without a sort it stops scanning at skip+limit.
func (c *Collection) shapeLocked(cands []Document, q Query, match matchFn) []Document {
	if q.SortBy == "" {
		need := -1
		if q.Limit > 0 {
			need = q.Skip + q.Limit
		}
		var out []Document
		for _, d := range cands {
			if !match(d) {
				continue
			}
			out = append(out, d)
			if need >= 0 && len(out) >= need {
				break
			}
		}
		return applySkipLimit(out, q.Skip, q.Limit)
	}

	sfp := compilePath(q.SortBy)
	k := 0
	if q.Limit > 0 {
		k = q.Skip + q.Limit
	}
	if k > 0 && k < len(cands)/2 {
		h := topKHeap{k: k, desc: q.SortDesc}
		for _, d := range cands {
			if !match(d) {
				continue
			}
			v, ok := d.lookupFP(sfp)
			h.push(sortItem{key: keyOf(v, ok), id: d.ID(), doc: d})
		}
		items := h.sorted()
		out := make([]Document, len(items))
		for i, it := range items {
			out[i] = it.doc
		}
		return applySkipLimit(out, q.Skip, q.Limit)
	}

	items := make([]sortItem, 0, len(cands))
	for _, d := range cands {
		if !match(d) {
			continue
		}
		v, ok := d.lookupFP(sfp)
		items = append(items, sortItem{key: keyOf(v, ok), id: d.ID(), doc: d})
	}
	desc := q.SortDesc
	sort.Slice(items, func(i, j int) bool {
		cmp := cmpItems(items[i], items[j])
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
	out := make([]Document, len(items))
	for i, it := range items {
		out[i] = it.doc
	}
	return applySkipLimit(out, q.Skip, q.Limit)
}

// orderedScanLocked streams the ordered index in sort order, re-checking
// the full filter, and stops as soon as skip+limit matches are in hand —
// the top-K fast path for sorted+limited queries on an indexed field.
func (c *Collection) orderedScanLocked(si *sortedIndex, q Query, match matchFn) []Document {
	need := -1
	if q.Limit > 0 {
		need = q.Skip + q.Limit
	}
	var out []Document
	si.iterLocked(c, q.SortDesc, func(d Document) bool {
		if !match(d) {
			return true
		}
		out = append(out, d)
		return need < 0 || len(out) < need
	})
	return applySkipLimit(out, q.Skip, q.Limit)
}

// applySkipLimit shapes an already-ordered result window.
func applySkipLimit(docs []Document, skip, limit int) []Document {
	if skip > 0 {
		if skip >= len(docs) {
			return nil
		}
		docs = docs[skip:]
	}
	if limit > 0 && len(docs) > limit {
		docs = docs[:limit]
	}
	return docs
}

// sortItem decorates a document with its pre-extracted sort key so
// comparisons never re-resolve the field path.
type sortItem struct {
	key sortKey
	id  string
	doc Document
}

// cmpItems is the engine's result order: sort key, then _id.
func cmpItems(a, b sortItem) int {
	if c := compareKeys(a.key, b.key); c != 0 {
		return c
	}
	return strings.Compare(a.id, b.id)
}

// topKHeap keeps the best k items under the query order; the root is the
// worst item kept, so each push is one comparison for the common
// not-better case.
type topKHeap struct {
	items []sortItem
	k     int
	desc  bool
}

// after reports whether a sorts after b in the result order.
func (h *topKHeap) after(a, b sortItem) bool {
	cmp := cmpItems(a, b)
	if h.desc {
		return cmp < 0
	}
	return cmp > 0
}

func (h *topKHeap) push(it sortItem) {
	if len(h.items) < h.k {
		h.items = append(h.items, it)
		i := len(h.items) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !h.after(h.items[i], h.items[parent]) {
				break
			}
			h.items[i], h.items[parent] = h.items[parent], h.items[i]
			i = parent
		}
		return
	}
	if !h.after(h.items[0], it) {
		return // not better than the worst kept
	}
	h.items[0] = it
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(h.items) && h.after(h.items[l], h.items[worst]) {
			worst = l
		}
		if r < len(h.items) && h.after(h.items[r], h.items[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		h.items[i], h.items[worst] = h.items[worst], h.items[i]
		i = worst
	}
}

// sorted drains the heap into result order.
func (h *topKHeap) sorted() []sortItem {
	sort.Slice(h.items, func(i, j int) bool { return h.after(h.items[j], h.items[i]) })
	return h.items
}

// Distinct returns the sorted distinct values of a field among matching
// documents, rendered as strings.
func (c *Collection) Distinct(field string, f Filter) []string {
	fp := compilePath(field)
	set := map[string]bool{}
	c.ForEach(Query{Filter: f}, func(d Document) bool {
		if v, ok := d.lookupFP(fp); ok {
			set[fmt.Sprint(v)] = true
		}
		return true
	})
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Query combines a filter with result shaping.
type Query struct {
	Filter   Filter
	SortBy   string
	SortDesc bool
	Skip     int
	Limit    int
	// Project restricts returned fields (plus _id). Find-only: the
	// zero-copy ForEach ignores it (callers read fields directly).
	Project []string
}

// Filter matches documents.
type Filter interface {
	Match(Document) bool
}

// FilterFunc adapts a function to the Filter interface.
type FilterFunc func(Document) bool

// Match implements Filter.
func (f FilterFunc) Match(d Document) bool { return f(d) }

type cmpOp int

const (
	opEq cmpOp = iota
	opNe
	opGt
	opGte
	opLt
	opLte
)

type cmpFilter struct {
	field string
	op    cmpOp
	value any
}

func (f cmpFilter) Match(d Document) bool {
	v, ok := d.lookup(f.field)
	if !ok {
		// Missing fields only match $ne, like MongoDB.
		return f.op == opNe
	}
	return evalOp(f.op, compareValues(v, f.value))
}

// Eq matches field == value.
func Eq(field string, value any) Filter { return cmpFilter{field, opEq, value} }

// Ne matches field != value (including missing fields).
func Ne(field string, value any) Filter { return cmpFilter{field, opNe, value} }

// Gt matches field > value.
func Gt(field string, value any) Filter { return cmpFilter{field, opGt, value} }

// Gte matches field >= value.
func Gte(field string, value any) Filter { return cmpFilter{field, opGte, value} }

// Lt matches field < value.
func Lt(field string, value any) Filter { return cmpFilter{field, opLt, value} }

// Lte matches field <= value.
func Lte(field string, value any) Filter { return cmpFilter{field, opLte, value} }

type inFilter struct {
	field  string
	values []any
	negate bool
}

func (f inFilter) Match(d Document) bool {
	v, ok := d.lookup(f.field)
	if !ok {
		return f.negate
	}
	for _, w := range f.values {
		if compareValues(v, w) == 0 {
			return !f.negate
		}
	}
	return f.negate
}

// In matches documents whose field equals any of the values.
func In(field string, values ...any) Filter { return inFilter{field, values, false} }

// Nin matches documents whose field equals none of the values.
func Nin(field string, values ...any) Filter { return inFilter{field, values, true} }

type existsFilter struct {
	field string
	want  bool
}

func (f existsFilter) Match(d Document) bool {
	_, ok := d.lookup(f.field)
	return ok == f.want
}

// Exists matches documents that have (or, want=false, lack) the field.
func Exists(field string, want bool) Filter { return existsFilter{field, want} }

type regexFilter struct {
	field string
	re    *regexp.Regexp
}

func (f regexFilter) Match(d Document) bool {
	v, ok := d.lookup(f.field)
	if !ok {
		return false
	}
	s, ok := v.(string)
	if !ok {
		s = fmt.Sprint(v)
	}
	return f.re.MatchString(s)
}

// Regex matches string fields against a compiled pattern. It panics on an
// invalid pattern (programming error, like regexp.MustCompile).
func Regex(field, pattern string) Filter {
	return regexFilter{field, regexp.MustCompile(pattern)}
}

type andFilter []Filter

func (fs andFilter) Match(d Document) bool {
	for _, f := range fs {
		if !f.Match(d) {
			return false
		}
	}
	return true
}

// And matches documents satisfying every sub-filter; And() matches all.
func And(fs ...Filter) Filter { return andFilter(fs) }

type orFilter []Filter

func (fs orFilter) Match(d Document) bool {
	for _, f := range fs {
		if f.Match(d) {
			return true
		}
	}
	return false
}

// Or matches documents satisfying at least one sub-filter; Or() matches none.
func Or(fs ...Filter) Filter { return orFilter(fs) }

type notFilter struct{ f Filter }

func (n notFilter) Match(d Document) bool { return !n.f.Match(d) }

// Not inverts a filter.
func Not(f Filter) Filter { return notFilter{f} }

// ElemMatch matches documents whose array field contains at least one
// element equal to value (used for ISD-set membership queries).
func ElemMatch(field string, value any) Filter {
	fp := compilePath(field)
	return FilterFunc(func(d Document) bool {
		v, ok := d.lookupFP(fp)
		if !ok {
			return false
		}
		switch arr := v.(type) {
		case []any:
			for _, e := range arr {
				if compareValues(e, value) == 0 {
					return true
				}
			}
		case []string:
			for _, e := range arr {
				if compareValues(e, value) == 0 {
					return true
				}
			}
		}
		return false
	})
}

// compareValues orders mixed scalar values: numbers numerically, strings
// lexically, booleans false<true; mismatched kinds order by kind name so
// sorting is total and stable. compareKeys (compile.go) is the same order
// over pre-projected keys; the two must agree on every pair.
func compareValues(a, b any) int {
	na, aNum := toFloat(a)
	nb, bNum := toFloat(b)
	if aNum && bNum {
		return cmpFloat(na, nb)
	}
	sa, aStr := a.(string)
	sb, bStr := b.(string)
	if aStr && bStr {
		return strings.Compare(sa, sb)
	}
	ba, aBool := a.(bool)
	bb, bBool := b.(bool)
	if aBool && bBool {
		switch {
		case !ba && bb:
			return -1
		case ba && !bb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(kindName(a), kindName(b))
}

func toFloat(v any) (float64, bool) {
	switch t := v.(type) {
	case float64:
		return t, true
	case float32:
		return float64(t), true
	case int:
		return float64(t), true
	case int32:
		return float64(t), true
	case int64:
		return float64(t), true
	case uint:
		return float64(t), true
	case uint64:
		return float64(t), true
	default:
		return 0, false
	}
}

func kindName(v any) string {
	switch v.(type) {
	case nil:
		return "0nil"
	case bool:
		return "1bool"
	case float64, float32, int, int32, int64, uint, uint64:
		return "2number"
	case string:
		return "3string"
	default:
		return fmt.Sprintf("9%T", v)
	}
}
