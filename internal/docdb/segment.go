package docdb

// segmentBackend stores the mutation log as one binary segment file per
// collection under a directory. Appends for different collections go to
// different files behind different mutexes, so concurrent InsertMany /
// UpsertMany on different collections don't serialize on a single journal
// lock the way jsonl writers do. Frames carry per-record CRC-32C
// (wal.go); commit markers record fsync points, which is what lets torn
// tails be detected and cut on replay, and what bounds the chaos
// harness's crash-truncation model (TruncateLogTail).
//
// Lock order: backend.mu (shard map) before shard.mu, never the reverse;
// neither is ever held while engine locks are taken.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

const (
	segShardPrefix = "c-"
	segShardSuffix = ".seg"
)

type segmentBackend struct {
	dir    string
	policy SyncPolicy

	gc groupCommitter

	mu     sync.Mutex
	shards map[string]*segShard
	err    error // sticky backend-level failure (shard create, close)
}

// segShard is one collection's segment file. path is immutable; mu guards
// the file handle and write state.
type segShard struct {
	collection string
	path       string

	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	buf   []byte // reused frame-encode buffer
	dirty bool   // frames appended since the last commit marker
	err   error  // sticky shard failure
}

func newSegmentBackend(dir string, policy SyncPolicy) (*segmentBackend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("docdb: segment dir %s: %w", dir, err)
	}
	b := &segmentBackend{dir: dir, policy: policy, shards: make(map[string]*segShard)}
	b.gc.init()
	return b, nil
}

func (b *segmentBackend) Name() string { return BackendSegment }
func (b *segmentBackend) Path() string { return b.dir }

// escapeShard maps a collection name to a filename-safe token, bijectively:
// [A-Za-z0-9_-] pass through, everything else is %XX-encoded. Bijectivity
// matters — two collections must never share a shard file.
func escapeShard(name string) string {
	var sb strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c == '_' || c == '-' || ('0' <= c && c <= '9') ||
			('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') {
			sb.WriteByte(c)
			continue
		}
		fmt.Fprintf(&sb, "%%%02X", c)
	}
	return sb.String()
}

func unescapeShard(token string) (string, bool) {
	var sb strings.Builder
	for i := 0; i < len(token); i++ {
		c := token[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		if i+2 >= len(token) {
			return "", false
		}
		var v byte
		if _, err := fmt.Sscanf(token[i+1:i+3], "%02X", &v); err != nil {
			return "", false
		}
		sb.WriteByte(v)
		i += 2
	}
	return sb.String(), true
}

func (b *segmentBackend) shardPath(collection string) string {
	return filepath.Join(b.dir, segShardPrefix+escapeShard(collection)+segShardSuffix)
}

// shard returns (creating if needed) the shard for a collection.
func (b *segmentBackend) shard(collection string) *segShard {
	b.mu.Lock()
	defer b.mu.Unlock()
	s, ok := b.shards[collection]
	if !ok {
		s = &segShard{collection: collection, path: b.shardPath(collection)}
		b.shards[collection] = s
	}
	return s
}

// sortedShards snapshots the shard map in collection order — every
// multi-shard walk (sync, close, stale-shard sweep) uses it so side-effect
// order is a pure function of the data, not of map iteration.
func (b *segmentBackend) sortedShards() []*segShard {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]*segShard, 0, len(b.shards))
	for _, s := range b.shards {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].collection < out[j].collection })
	return out
}

// Replay streams every shard file, in sorted shard order, into apply.
// Each shard's torn tail (first short, length-implausible, CRC-bad or
// undecodable frame) is truncated off that file; a failpoint stop ends the
// whole replay and leaves every file as found.
func (b *segmentBackend) Replay(fp Failpoint, apply func(Record)) error {
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return fmt.Errorf("docdb: segment dir %s: %w", b.dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(n, segShardPrefix) && strings.HasSuffix(n, segShardSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	recno := 0
	for _, fn := range names {
		coll, ok := unescapeShard(strings.TrimSuffix(strings.TrimPrefix(fn, segShardPrefix), segShardSuffix))
		if !ok {
			return fmt.Errorf("docdb: segment dir %s: unrecognized shard file %s", b.dir, fn)
		}
		path := filepath.Join(b.dir, fn)
		var stopped bool
		recno, stopped, err = replaySegmentFile(path, fp, apply, recno)
		if err != nil {
			return err
		}
		//lint:ignore lockcheck Replay runs before the DB (and backend) is shared, no concurrent access is possible
		b.shards[coll] = &segShard{collection: coll, path: path}
		if stopped {
			break
		}
	}
	return nil
}

// replaySegmentFile replays one shard, truncating a torn tail in place.
// recno numbers records across the whole replay for fp.ReplayEntry;
// stopped reports a failpoint stop (file left untouched).
func replaySegmentFile(path string, fp Failpoint, apply func(Record), recno int) (_ int, stopped bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return recno, false, fmt.Errorf("docdb: open segment %s: %w", path, err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("docdb: replay %s: %w", path, cerr)
		}
	}()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [len(segMagic)]byte
	if _, herr := io.ReadFull(r, hdr[:]); herr != nil {
		if herr == io.EOF {
			return recno, false, nil // empty file: fresh shard
		}
		if herr == io.ErrUnexpectedEOF {
			// Crash mid-header on a brand-new shard: nothing was ever
			// committed here, reset it.
			return recno, false, truncateAt(path, 0)
		}
		return recno, false, fmt.Errorf("docdb: replay %s: %w", path, herr)
	}
	if string(hdr[:]) != segMagic {
		return recno, false, fmt.Errorf("docdb: %s is not a segment file", path)
	}
	size := int64(0)
	if st, serr := f.Stat(); serr == nil {
		size = st.Size()
	}
	good := int64(len(segMagic))
	pos := good // bytes consumed, including frames later judged torn
	var payload []byte
	torn := false
	for {
		var fh [frameHeaderSize]byte
		if _, rerr := io.ReadFull(r, fh[:]); rerr != nil {
			if rerr == io.EOF {
				break
			}
			if rerr == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return recno, false, fmt.Errorf("docdb: replay %s: %w", path, rerr)
		}
		ln := binary.LittleEndian.Uint32(fh[0:4])
		crc := binary.LittleEndian.Uint32(fh[4:8])
		// A length past the cap — or past the bytes the file actually has —
		// is a torn frame; checking against the file size first keeps a
		// corrupt length from forcing a giant doomed allocation.
		if ln > maxFramePayload || int64(ln) > size-pos-frameHeaderSize {
			torn = true
			break
		}
		pos += frameHeaderSize + int64(ln)
		if uint32(cap(payload)) < ln {
			payload = make([]byte, ln)
		}
		payload = payload[:ln]
		if _, rerr := io.ReadFull(r, payload); rerr != nil {
			if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
				torn = true
				break
			}
			return recno, false, fmt.Errorf("docdb: replay %s: %w", path, rerr)
		}
		if crc32.Checksum(payload, segCRCTable) != crc {
			torn = true
			break
		}
		rec, isCommit, derr := decodeRecordPayload(payload)
		if derr != nil {
			torn = true
			break
		}
		good += frameHeaderSize + int64(ln)
		if isCommit {
			continue
		}
		if fp != nil && !fp.ReplayEntry(recno, rec.Op) {
			return recno, true, nil
		}
		recno++
		apply(rec)
	}
	if torn {
		return recno, false, truncateAt(path, good)
	}
	return recno, false, nil
}

func truncateAt(path string, n int64) error {
	if err := os.Truncate(path, n); err != nil {
		return fmt.Errorf("docdb: truncate torn tail %s: %w", path, err)
	}
	return nil
}

// Append encodes the record once, straight into its collection's shard
// buffer. Writers on different collections contend only on the cheap shard
// lookup, not on each other's file locks.
func (b *segmentBackend) Append(rec Record) {
	s := b.shard(rec.Collection)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.appendLocked(rec)
}

func (s *segShard) appendLocked(rec Record) {
	if s.err != nil {
		return
	}
	if s.f == nil {
		if err := s.openLocked(); err != nil {
			s.err = err
			return
		}
	}
	buf, err := appendRecordFrame(s.buf[:0], rec)
	s.buf = buf[:0]
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(buf); err != nil {
		s.err = err
		return
	}
	s.dirty = true
}

// openLocked opens (creating with a magic header if absent) the shard's
// append side.
func (s *segShard) openLocked() error {
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("docdb: open segment %s: %w", s.path, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("docdb: open segment %s: %w", s.path, err)
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if st.Size() == 0 {
		if _, err := w.WriteString(segMagic); err != nil {
			_ = f.Close()
			return fmt.Errorf("docdb: open segment %s: %w", s.path, err)
		}
	}
	s.f, s.w = f, w
	return nil
}

// commitLocked seals the shard's appended frames under a commit marker and
// fsyncs. A clean shard is left untouched (no empty markers, no fsync).
func (s *segShard) commitLocked() error {
	if s.err != nil {
		return s.err
	}
	if s.f == nil || !s.dirty {
		return nil
	}
	buf := appendCommitFrame(s.buf[:0])
	s.buf = buf[:0]
	if _, err := s.w.Write(buf); err != nil {
		s.err = err
		return err
	}
	if err := s.w.Flush(); err != nil {
		s.err = err
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.err = err
		return err
	}
	s.dirty = false
	return nil
}

func (s *segShard) closeLocked() error {
	cerr := s.commitLocked()
	if s.f != nil {
		if err := s.f.Close(); err != nil && cerr == nil {
			cerr = err
		}
		s.f, s.w = nil, nil
	}
	if s.err == nil {
		s.err = errBeforeReplay // poison further appends
	}
	return cerr
}

// commit is commitLocked behind the shard's own lock.
func (s *segShard) commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commitLocked()
}

// close is closeLocked behind the shard's own lock.
func (s *segShard) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

// syncForCommit commits every dirty shard, in collection order. It is both
// Flush's body and the group committer's per-round sync hook.
func (b *segmentBackend) syncForCommit() error {
	b.mu.Lock()
	err := b.err
	b.mu.Unlock()
	for _, s := range b.sortedShards() {
		if serr := s.commit(); serr != nil && err == nil {
			err = serr
		}
	}
	return err
}

// Commit is a no-op under SyncOnFlush. Under SyncGroupCommit, concurrent
// batches ride shared fsync rounds: one fsync per dirty shard per round,
// no matter how many writers commit inside the round's window.
func (b *segmentBackend) Commit() error {
	if b.policy != SyncGroupCommit {
		return nil
	}
	return b.gc.commit(b)
}

func (b *segmentBackend) Flush() error {
	return b.syncForCommit()
}

func (b *segmentBackend) Close() error {
	err := func() error {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.err
	}()
	for _, s := range b.sortedShards() {
		if serr := s.close(); serr != nil && serr != errBeforeReplay && err == nil {
			err = serr
		}
	}
	return err
}

// CheckpointCollection rewrites one collection's shard to exactly the
// emitted snapshot, online: the rewrite goes to a temporary file (no shard
// lock held, so Flush and other collections' writers proceed), then the
// shard swaps to it under its own lock via an atomic rename. The caller
// (DB.Compact) excludes writers on this one collection while snap runs.
func (b *segmentBackend) CheckpointCollection(name string, snap func(emit func(Record) error) error) error {
	s := b.shard(name)
	tmp := s.path + ".tmp"
	if err := writeSegmentSnapshot(tmp, snap); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		if err := s.f.Close(); err != nil {
			return fmt.Errorf("docdb: compact %s: %w", s.path, err)
		}
		s.f, s.w = nil, nil
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("docdb: compact %s: %w", s.path, err)
	}
	// The snapshot is synced; the shard reopens lazily on the next append.
	s.dirty = false
	s.err = nil
	return nil
}

// writeSegmentSnapshot writes a fresh shard file: magic, one frame per
// emitted record, a commit marker, fsynced. The partial file is removed on
// failure.
func writeSegmentSnapshot(tmp string, snap func(emit func(Record) error) error) (err error) {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("docdb: compact: %w", cerr)
		}
		if err != nil {
			if rmErr := os.Remove(tmp); rmErr != nil && !os.IsNotExist(rmErr) {
				err = fmt.Errorf("%w (cleanup: %v)", err, rmErr)
			}
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(segMagic); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	var buf []byte
	if err := snap(func(rec Record) error {
		var ferr error
		buf, ferr = appendRecordFrame(buf[:0], rec)
		if ferr != nil {
			return ferr
		}
		_, werr := w.Write(buf)
		return werr
	}); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	if _, err := w.Write(appendCommitFrame(buf[:0])); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	return nil
}

// DropStaleShards removes shard files whose collection no longer exists
// (dropped and never re-created). The caller excludes Drop and collection
// creation while it runs.
func (b *segmentBackend) DropStaleShards(live func(name string) bool) error {
	var firstErr error
	for _, s := range b.sortedShards() {
		if live(s.collection) {
			continue
		}
		s.mu.Lock()
		if s.f != nil {
			if err := s.f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("docdb: compact %s: %w", s.path, err)
			}
			s.f, s.w = nil, nil
		}
		s.err = errBeforeReplay
		s.mu.Unlock()
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = fmt.Errorf("docdb: compact %s: %w", s.path, err)
		}
		b.mu.Lock()
		delete(b.shards, s.collection)
		b.mu.Unlock()
	}
	return firstErr
}

// truncateSegmentTail implements TruncateLogTail's crash model for segment
// directories: every shard loses its entire uncommitted suffix (bytes past
// its last commit marker — exactly what a crash before the next fsync
// loses), floored at the end of the record containing marker. Errors if
// marker appears in no shard.
func truncateSegmentTail(dir, marker string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("docdb: truncate %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.Type().IsRegular() && strings.HasPrefix(n, segShardPrefix) && strings.HasSuffix(n, segShardSuffix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	found := false
	for _, fn := range names {
		path := filepath.Join(dir, fn)
		hit, err := truncateShardTail(path, marker)
		if err != nil {
			return err
		}
		found = found || hit
	}
	if !found {
		return fmt.Errorf("docdb: truncate %s: marker %q not found", dir, marker)
	}
	return nil
}

// truncateShardTail scans one shard's frames, tracking the end of the last
// commit marker and of the last frame containing marker, and truncates the
// uncommitted suffix. Reports whether marker was seen.
func truncateShardTail(path, marker string) (found bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("docdb: truncate %s: %w", path, err)
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return false, nil // torn header or foreign file: nothing committed to preserve
	}
	needle := []byte(marker)
	off := int64(len(segMagic))
	committedEnd := off
	markerEnd := int64(0)
	for {
		payload, next, ok := nextFrame(data, off)
		if !ok {
			break
		}
		if len(payload) == 1 && payload[0] == segOpCommit {
			committedEnd = next
		} else if len(needle) > 0 && bytes.Contains(payload, needle) {
			found = true
			markerEnd = next
		}
		off = next
	}
	keep := committedEnd
	if markerEnd > keep {
		keep = markerEnd
	}
	if keep < int64(len(data)) {
		if err := os.Truncate(path, keep); err != nil {
			return found, fmt.Errorf("docdb: truncate %s: %w", path, err)
		}
	}
	return found, nil
}

// nextFrame validates and returns the frame starting at off, and the
// offset just past it.
func nextFrame(data []byte, off int64) (payload []byte, next int64, ok bool) {
	if off+frameHeaderSize > int64(len(data)) {
		return nil, 0, false
	}
	ln := binary.LittleEndian.Uint32(data[off : off+4])
	crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if ln > maxFramePayload || off+frameHeaderSize+int64(ln) > int64(len(data)) {
		return nil, 0, false
	}
	payload = data[off+frameHeaderSize : off+frameHeaderSize+int64(ln)]
	if crc32.Checksum(payload, segCRCTable) != crc {
		return nil, 0, false
	}
	return payload, off + frameHeaderSize + int64(ln), true
}
