package docdb

// Unit tests for the segment backend's wire layer (wal.go) and file layer
// (segment.go): codec round-trips, shard-name escaping, torn-tail replay
// bounds, crash-truncation bounds and the group committer. The cross-backend
// behavioural contract lives in conformance_test.go; these tests pin the
// binary format itself.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSegValueCodecRoundTrip(t *testing.T) {
	cases := []struct {
		in   any
		want any // nil means: expect in unchanged
	}{
		{in: nil},
		{in: true},
		{in: false},
		{in: 3.25},
		{in: int(7), want: int64(7)},
		{in: int64(-1 << 40)},
		{in: "path 2_3 → up"},
		{in: ""},
		{in: []string{"a", "b", ""}},
		{in: []any{int64(1), "two", 3.5, nil, true}},
		{in: Document{"x": int64(1), "nested": Document{"y": "z"}}},
		{in: map[string]any{"k": "v"}, want: Document{"k": "v"}},
		// JSON fallback for types the codec has no tag for.
		{in: uint8(200), want: float64(200)},
	}
	for i, tc := range cases {
		buf, err := appendSegValue(nil, tc.in, 0)
		if err != nil {
			t.Fatalf("case %d (%T): encode: %v", i, tc.in, err)
		}
		got, rest, err := readSegValue(buf, 0)
		if err != nil {
			t.Fatalf("case %d (%T): decode: %v", i, tc.in, err)
		}
		if len(rest) != 0 {
			t.Fatalf("case %d (%T): %d trailing bytes", i, tc.in, len(rest))
		}
		want := tc.want
		if want == nil {
			want = tc.in
		}
		if tc.in == nil {
			want = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("case %d: %#v round-tripped to %#v, want %#v", i, tc.in, got, want)
		}
	}
}

func TestSegValueCodecDepthLimit(t *testing.T) {
	v := any("leaf")
	for i := 0; i < segMaxValueDepth+2; i++ {
		v = []any{v}
	}
	if _, err := appendSegValue(nil, v, 0); err == nil {
		t.Fatal("encoding past the depth cap succeeded")
	}
}

func TestSegValueCodecRejectsTruncatedInput(t *testing.T) {
	buf, err := appendSegValue(nil, Document{"k": []any{int64(1), "two"}, "f": 2.5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut++ {
		// Must error or stop cleanly — never panic, never read past the slice.
		_, _, _ = readSegValue(buf[:cut], 0)
	}
}

func TestEscapeShardBijective(t *testing.T) {
	names := []string{
		"stats", "paths_stats", "a.b", "UPPER-lower_09",
		"sp ace", "per%cent", "uni:côde", "../escape", "c-already.seg", "",
	}
	seen := map[string]string{}
	for _, name := range names {
		esc := escapeShard(name)
		for i := 0; i < len(esc); i++ {
			c := esc[i]
			safe := c == '_' || c == '-' || c == '%' ||
				('0' <= c && c <= '9') || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z')
			if !safe {
				t.Fatalf("escapeShard(%q) = %q contains unsafe byte %q", name, esc, c)
			}
		}
		if prev, dup := seen[esc]; dup {
			t.Fatalf("collision: %q and %q both escape to %q", prev, name, esc)
		}
		seen[esc] = name
		back, ok := unescapeShard(esc)
		if !ok || back != name {
			t.Fatalf("unescapeShard(escapeShard(%q)) = %q, %v", name, back, ok)
		}
	}
}

// segmentFixtureRecords is the fixed op sequence every replay-bound test
// (and the fuzz seed corpus) builds its shard file from.
func segmentFixtureRecords() []Record {
	return []Record{
		{Op: "insert", Collection: "stats", Doc: Document{"_id": "a", "v": int64(1)}},
		{Op: "insert", Collection: "stats", Doc: Document{"_id": "b", "lat": 9.5, "tags": []string{"up"}}},
		{Op: "insert", Collection: "stats", Doc: Document{"_id": "c", "v": int64(3)}, Replace: true},
		{Op: "delete", Collection: "stats", ID: "a"},
		{Op: "drop", Collection: "stats"},
	}
}

// buildSegmentFixture renders the fixture records as one shard file's bytes:
// magic, two records, a commit marker, three records, a commit marker.
func buildSegmentFixture(t testing.TB) []byte {
	t.Helper()
	buf := []byte(segMagic)
	var err error
	for i, rec := range segmentFixtureRecords() {
		if buf, err = appendRecordFrame(buf, rec); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			buf = appendCommitFrame(buf)
		}
	}
	return appendCommitFrame(buf)
}

func recordsJSON(t testing.TB, recs []Record) []string {
	t.Helper()
	out := make([]string, len(recs))
	for i, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = string(b)
	}
	return out
}

// replayShardBytes writes data as a shard file and replays it, returning
// the applied records and the replay error.
func replayShardBytes(t testing.TB, data []byte) (string, []Record, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), segShardPrefix+"stats"+segShardSuffix)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var recs []Record
	_, _, err := replaySegmentFile(path, nil, func(r Record) { recs = append(recs, r) }, 0)
	return path, recs, err
}

// TestSegmentReplayTruncationPrefix cuts the fixture file at every byte
// offset: replay must never error (a cut is a torn tail, not corruption),
// must apply an exact prefix of the original records, and must leave the
// file in a state that replays identically.
func TestSegmentReplayTruncationPrefix(t *testing.T) {
	full := buildSegmentFixture(t)
	want := recordsJSON(t, segmentFixtureRecords())
	for cut := len(full); cut >= len(segMagic); cut-- {
		path, recs, err := replayShardBytes(t, full[:cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		got := recordsJSON(t, recs)
		if len(got) > len(want) {
			t.Fatalf("cut %d: replayed %d records from a %d-record log", cut, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("cut %d record %d: %s, want %s", cut, i, got[i], want[i])
			}
		}
		// Second replay of the truncated file: same records, still no error.
		var again []Record
		if _, _, err := replaySegmentFile(path, nil, func(r Record) { again = append(again, r) }, 0); err != nil {
			t.Fatalf("cut %d: second replay: %v", cut, err)
		}
		if len(again) != len(recs) {
			t.Fatalf("cut %d: second replay applied %d records, first %d", cut, len(again), len(recs))
		}
	}
	// Cuts inside the magic reset a never-committed shard to empty.
	for cut := len(segMagic) - 1; cut >= 0; cut-- {
		path, recs, err := replayShardBytes(t, full[:cut])
		if err != nil || len(recs) != 0 {
			t.Fatalf("cut %d: %v, %d records", cut, err, len(recs))
		}
		if st, _ := os.Stat(path); st.Size() != 0 {
			t.Fatalf("cut %d: torn-header shard kept %d bytes", cut, st.Size())
		}
	}
}

// TestSegmentReplayBitFlip flips one bit in every frame-payload byte in
// turn: replay must stop at or before the damaged frame, never error and
// never apply a record whose frame failed its CRC.
func TestSegmentReplayBitFlip(t *testing.T) {
	full := buildSegmentFixture(t)
	want := recordsJSON(t, segmentFixtureRecords())
	for off := len(segMagic); off < len(full); off += 7 {
		data := append([]byte(nil), full...)
		data[off] ^= 0x10
		_, recs, err := replayShardBytes(t, data)
		if err != nil {
			t.Fatalf("flip at %d: %v", off, err)
		}
		got := recordsJSON(t, recs)
		if len(got) > len(want) {
			t.Fatalf("flip at %d: %d records from a %d-record log", off, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("flip at %d: record %d is %s, want %s (replayed past bad CRC)", off, i, got[i], want[i])
			}
		}
	}
}

func TestSegmentReplayRejectsForeignFile(t *testing.T) {
	_, _, err := replayShardBytes(t, []byte("{\"op\":\"insert\"}\n"))
	if err == nil {
		t.Fatal("replaying a jsonl file as a segment succeeded")
	}
}

// TestSegmentTruncateTailBounds pins TruncateLogTail's segment crash model:
// the whole uncommitted suffix goes, committed frames survive, the record
// holding the marker floors the cut, and a marker-free log refuses.
func TestSegmentTruncateTailBounds(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		path := filepath.Join(dir, segShardPrefix+"stats"+segShardSuffix)
		buf := []byte(segMagic)
		var err error
		for _, rec := range []Record{
			{Op: "insert", Collection: "stats", Doc: Document{"_id": "meta-123", "kind": "campaign"}},
			{Op: "insert", Collection: "stats", Doc: Document{"_id": "s1"}},
		} {
			if buf, err = appendRecordFrame(buf, rec); err != nil {
				t.Fatal(err)
			}
		}
		buf = appendCommitFrame(buf)
		if buf, err = appendRecordFrame(buf, Record{Op: "insert", Collection: "stats", Doc: Document{"_id": "uncommitted"}}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return dir, path
	}

	t.Run("cuts uncommitted suffix only", func(t *testing.T) {
		dir, path := build(t)
		if err := TruncateLogTail(dir, "meta-123", 1<<20); err != nil {
			t.Fatal(err)
		}
		_, recs, err := replayShardBytes(t, readAll(t, path))
		if err != nil {
			t.Fatal(err)
		}
		ids := map[string]bool{}
		for _, r := range recs {
			ids[r.Doc.ID()] = true
		}
		if !ids["meta-123"] || !ids["s1"] || ids["uncommitted"] {
			t.Fatalf("surviving records: %v", ids)
		}
	})
	t.Run("marker floors the cut past commit markers", func(t *testing.T) {
		dir := t.TempDir()
		path := filepath.Join(dir, segShardPrefix+"p"+segShardSuffix)
		// No commit marker at all, but the first record holds the marker: the
		// cut must stop after it rather than emptying the shard.
		buf := []byte(segMagic)
		var err error
		if buf, err = appendRecordFrame(buf, Record{Op: "insert", Collection: "p", Doc: Document{"_id": "meta-9"}}); err != nil {
			t.Fatal(err)
		}
		if buf, err = appendRecordFrame(buf, Record{Op: "insert", Collection: "p", Doc: Document{"_id": "later"}}); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := TruncateLogTail(dir, "meta-9", 1<<20); err != nil {
			t.Fatal(err)
		}
		_, recs, err := replayShardBytes(t, readAll(t, path))
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Doc.ID() != "meta-9" {
			t.Fatalf("survivors: %+v", recs)
		}
	})
	t.Run("missing marker refuses", func(t *testing.T) {
		dir, _ := build(t)
		if err := TruncateLogTail(dir, "absent-marker", 1<<20); err == nil {
			t.Fatal("truncating without the marker succeeded")
		}
	})
}

func readAll(t testing.TB, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestSegmentShardPerCollection: writers on different collections land in
// different files, named for their collection.
func TestSegmentShardPerCollection(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db.seg")
	db := mustOpenBackend(t, BackendSegment, dir)
	for _, name := range []string{"alpha", "paths_stats", "with space"} {
		if err := db.Collection(name).Insert(Document{"_id": "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"alpha", "paths_stats", "with space"} {
		p := filepath.Join(dir, segShardPrefix+escapeShard(name)+segShardSuffix)
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("shard for %q: %v", name, err)
		}
	}
}

// stubSyncTarget adapts a plain func to the committer's syncTarget hook.
type stubSyncTarget func() error

func (f stubSyncTarget) syncForCommit() error { return f() }

// TestGroupCommitterRounds pins the committer's accounting: sequential
// commits each run a round, concurrent commits coalesce into at most
// commit-count rounds, and a sync failure is sticky for every later caller.
func TestGroupCommitterRounds(t *testing.T) {
	var g groupCommitter
	g.init()
	var syncs atomic.Int64
	ok := stubSyncTarget(func() error { syncs.Add(1); return nil })
	for i := 0; i < 3; i++ {
		if err := g.commit(ok); err != nil {
			t.Fatal(err)
		}
	}
	if syncs.Load() != 3 {
		t.Fatalf("3 sequential commits ran %d sync rounds", syncs.Load())
	}

	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.commit(ok); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if n := syncs.Load() - 3; n < 1 || n > callers {
		t.Fatalf("%d concurrent commits ran %d sync rounds", callers, n)
	}

	bad := stubSyncTarget(func() error { return fmt.Errorf("disk gone") })
	if err := g.commit(bad); err == nil {
		t.Fatal("failed sync round returned nil")
	}
	if err := g.commit(ok); err == nil {
		t.Fatal("sticky sync error cleared itself")
	}
}

// TestRegenerateFuzzCorpus rewrites the checked-in seed corpus under
// testdata/fuzz/FuzzSegmentReplay when DOCDB_REGEN_CORPUS=1 is set (run it
// after changing the segment format). The corpus mirrors the f.Add seeds:
// the intact fixture, truncations, a bit flip and foreign bytes.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("DOCDB_REGEN_CORPUS") == "" {
		t.Skip("set DOCDB_REGEN_CORPUS=1 to rewrite the corpus")
	}
	full := buildSegmentFixture(t)
	flipped := append([]byte(nil), full...)
	flipped[len(segMagic)+11] ^= 0x40
	seeds := map[string][]byte{
		"intact":      full,
		"torn-frame":  full[:len(full)-3],
		"torn-early":  full[:len(segMagic)+5],
		"magic-only":  []byte(segMagic),
		"bit-flip":    flipped,
		"foreign-txt": []byte("not a segment at all\n"),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSegmentReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzSegmentReplay feeds arbitrary bytes to the shard replayer. Whatever
// the damage — random truncation, bit flips, garbage — replay must never
// panic, must never error on a well-formed magic (damage past the header is
// a torn tail by definition), must only apply frames that pass their CRC,
// and must leave the file in a state whose second replay is error-free and
// identical. Pure truncations of the valid fixture must additionally yield
// an exact record prefix.
func FuzzSegmentReplay(f *testing.F) {
	full := buildSegmentFixture(f)
	f.Add(full)
	f.Add(full[:len(full)-3])
	f.Add(full[:len(segMagic)+5])
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add([]byte("not a segment at all\n"))
	flipped := append([]byte(nil), full...)
	flipped[len(segMagic)+11] ^= 0x40
	f.Add(flipped)

	wantJSON := recordsJSON(f, segmentFixtureRecords())
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), segShardPrefix+"stats"+segShardSuffix)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs []Record
		_, _, err := replaySegmentFile(path, nil, func(r Record) { recs = append(recs, r) }, 0)
		if err != nil {
			if len(data) >= len(segMagic) && string(data[:len(segMagic)]) == segMagic {
				t.Fatalf("replay errored on a well-formed header: %v", err)
			}
			return // foreign file rejected: fine
		}
		if bytes.HasPrefix(full, data) {
			// A pure truncation: applied records must be an exact prefix.
			got := recordsJSON(t, recs)
			if len(got) > len(wantJSON) {
				t.Fatalf("truncation replayed %d records from a %d-record log", len(got), len(wantJSON))
			}
			for i := range got {
				if got[i] != wantJSON[i] {
					t.Fatalf("record %d: %s, want %s", i, got[i], wantJSON[i])
				}
			}
		}
		// The surviving file must be fully framed: every byte past the magic
		// belongs to a CRC-valid frame (nothing torn was kept)...
		kept := readAll(t, path)
		if len(kept) > 0 {
			off := int64(len(segMagic))
			for {
				payload, next, ok := nextFrame(kept, off)
				if !ok {
					break
				}
				_ = payload
				off = next
			}
			if off != int64(len(kept)) {
				t.Fatalf("%d unframed bytes survived replay", int64(len(kept))-off)
			}
		}
		// ...and a second replay must agree exactly with the first.
		var again []Record
		if _, _, err := replaySegmentFile(path, nil, func(r Record) { again = append(again, r) }, 0); err != nil {
			t.Fatalf("second replay errored: %v", err)
		}
		a, b := recordsJSON(t, recs), recordsJSON(t, again)
		if len(a) != len(b) {
			t.Fatalf("second replay applied %d records, first %d", len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("replay not idempotent at record %d: %s vs %s", i, a[i], b[i])
			}
		}
	})
}
