package docdb

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// jsonlBackend is the reference storage backend and the historical on-disk
// format: one JSON object per mutation, one mutation per line, so a journal
// stays greppable and diffable. Everything goes through a single append
// file, which makes it the simplest possible implementation of the Backend
// contract — and the baseline the segment backend is measured against.
type jsonlBackend struct {
	jpath  string
	policy SyncPolicy

	gc groupCommitter

	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// jsonlEntry is one line of the journal. The short keys are load-bearing:
// they are the on-disk format of every journal written before the backend
// split, and replay must keep reading those.
type jsonlEntry struct {
	Op         string   `json:"op"` // insert | delete | drop
	Collection string   `json:"c"`
	Doc        Document `json:"doc,omitempty"`
	ID         string   `json:"id,omitempty"`
	Replace    bool     `json:"replace,omitempty"`
}

var errBeforeReplay = errors.New("docdb: backend used before replay")

func newJSONLBackend(path string, policy SyncPolicy) *jsonlBackend {
	b := &jsonlBackend{jpath: path, policy: policy, err: errBeforeReplay}
	b.gc.init()
	return b
}

func (b *jsonlBackend) Name() string { return BackendJSONL }
func (b *jsonlBackend) Path() string { return b.jpath }

// Replay loads the journal into apply, then opens the append side. A
// physically torn tail — a partial or corrupt record with no injected
// failpoint in play — is truncated off the file before the appender
// attaches. Without that, O_APPEND would write the next record onto the
// same line as the torn bytes and the merged line would fail to parse on
// the next replay, silently discarding every record after it.
func (b *jsonlBackend) Replay(fp Failpoint, apply func(Record)) error {
	f, err := os.Open(b.jpath)
	var goodEnd int64
	var bareTail, torn bool
	switch {
	case err == nil:
		goodEnd, bareTail, torn, err = replayJSONL(f, fp, apply)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return fmt.Errorf("docdb: replay %s: %w", b.jpath, cerr)
		}
		if torn {
			if err := os.Truncate(b.jpath, goodEnd); err != nil {
				return fmt.Errorf("docdb: truncate torn tail %s: %w", b.jpath, err)
			}
			bareTail = false
		}
	case os.IsNotExist(err):
		// Fresh database.
	default:
		return fmt.Errorf("docdb: open %s: %w", b.jpath, err)
	}
	af, err := os.OpenFile(b.jpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("docdb: open journal %s: %w", b.jpath, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.f = af
	b.w = bufio.NewWriterSize(af, 1<<16)
	b.enc = json.NewEncoder(b.w)
	b.err = nil
	if bareTail {
		// The final line parsed but lacked its newline (a crash between the
		// record bytes and the terminator). It was applied and kept, so
		// terminate it before anything is appended after it.
		b.err = b.w.WriteByte('\n')
	}
	return b.err
}

// replayJSONL streams the journal into apply. It returns the byte offset
// just past the last intact record (goodEnd), whether the final record
// parsed but had no trailing newline (bareTail), and whether the tail is
// physically torn and should be truncated to goodEnd. An injected failpoint
// stop reports neither: the file is left exactly as found.
func replayJSONL(f *os.File, fp Failpoint, apply func(Record)) (goodEnd int64, bareTail, torn bool, err error) {
	r := bufio.NewReaderSize(f, 1<<20)
	n := 0
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr != nil && rerr != io.EOF {
			return 0, false, false, fmt.Errorf("docdb: replay %s: %w", f.Name(), rerr)
		}
		complete := len(line) > 0 && line[len(line)-1] == '\n'
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var e jsonlEntry
			if uerr := json.Unmarshal(trimmed, &e); uerr != nil {
				// Torn or corrupt record: stop replay, keep what we have,
				// and have the caller cut the damage off the file.
				return goodEnd, false, true, nil
			}
			if fp != nil && !fp.ReplayEntry(n, e.Op) {
				// Injected truncation: drop the journal's tail from the
				// replayed state but leave the file untouched.
				return goodEnd, false, false, nil
			}
			n++
			apply(Record{Op: e.Op, Collection: e.Collection, Doc: e.Doc, ID: e.ID, Replace: e.Replace})
			if !complete {
				goodEnd += int64(len(line))
				bareTail = true
			}
		} else if !complete && len(line) > 0 {
			// Whitespace-only unterminated tail: torn.
			return goodEnd, false, true, nil
		}
		if complete {
			goodEnd += int64(len(line))
		}
		if rerr == io.EOF {
			return goodEnd, bareTail, false, nil
		}
	}
}

// Append encodes the record straight into the journal's write buffer — one
// encode per mutation, no intermediate allocation (the insert
// write-amplification fix).
func (b *jsonlBackend) Append(rec Record) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err != nil {
		return
	}
	e := jsonlEntry{Op: rec.Op, Collection: rec.Collection, Doc: rec.Doc, ID: rec.ID, Replace: rec.Replace}
	if err := b.enc.Encode(e); err != nil {
		b.err = err
	}
}

// Commit is a no-op under SyncOnFlush; under SyncGroupCommit concurrent
// batches coalesce into shared fsync rounds via the group committer.
func (b *jsonlBackend) Commit() error {
	if b.policy != SyncGroupCommit {
		return nil
	}
	return b.gc.commit(b)
}

// syncForCommit is the group committer's per-round sync hook.
func (b *jsonlBackend) syncForCommit() error { return b.Flush() }

func (b *jsonlBackend) Flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushLocked()
}

func (b *jsonlBackend) flushLocked() error {
	if b.err != nil {
		return b.err
	}
	if err := b.w.Flush(); err != nil {
		b.err = err
		return err
	}
	return b.f.Sync()
}

func (b *jsonlBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closeLocked()
}

func (b *jsonlBackend) closeLocked() error {
	if b.err == errBeforeReplay {
		return nil
	}
	ferr := b.flushLocked()
	cerr := b.f.Close()
	b.err = errBeforeReplay // poison further appends
	if ferr != nil {
		return ferr
	}
	return cerr
}

// CheckpointLog rewrites the whole journal to the emitted snapshot through
// a temporary file and an atomic rename, so a crash during compaction
// leaves either the old or the new journal intact. The caller (DB.Compact)
// holds the DB write lock, so no appends race the swap.
func (b *jsonlBackend) CheckpointLog(snap func(emit func(Record) error) error) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.flushLocked(); err != nil {
		return err
	}
	tmp := b.jpath + ".compact"
	if err := writeJSONLSnapshot(tmp, snap); err != nil {
		return err
	}
	if err := b.closeLocked(); err != nil {
		return err
	}
	if err := os.Rename(tmp, b.jpath); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	nf, err := os.OpenFile(b.jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("docdb: compact: reopen: %w", err)
	}
	b.f = nf
	b.w = bufio.NewWriterSize(nf, 1<<16)
	b.enc = json.NewEncoder(b.w)
	b.err = nil
	return nil
}

// writeJSONLSnapshot writes the emitted records to tmp, synced to disk. On
// any failure the partial file is removed.
func writeJSONLSnapshot(tmp string, snap func(emit func(Record) error) error) (err error) {
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("docdb: compact: %w", cerr)
		}
		if err != nil {
			if rmErr := os.Remove(tmp); rmErr != nil && !os.IsNotExist(rmErr) {
				err = errors.Join(err, rmErr)
			}
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	enc := json.NewEncoder(w)
	if err := snap(func(rec Record) error {
		e := jsonlEntry{Op: rec.Op, Collection: rec.Collection, Doc: rec.Doc, ID: rec.ID, Replace: rec.Replace}
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("docdb: compact: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("docdb: compact: %w", err)
	}
	return nil
}

// truncateJSONLTail cuts up to maxCut bytes off the journal's tail, but
// never at or past the end of the line whose JSON contains marker (as a
// quoted string value). See TruncateLogTail.
func truncateJSONLTail(path, marker string, maxCut int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("docdb: truncate %s: %w", path, err)
	}
	needle := []byte(fmt.Sprintf("%q", marker))
	i := bytes.Index(data, needle)
	if i < 0 {
		return fmt.Errorf("docdb: truncate %s: marker %q not found", path, marker)
	}
	floor := len(data)
	if nl := bytes.IndexByte(data[i:], '\n'); nl >= 0 {
		floor = i + nl + 1
	}
	cut := len(data) - maxCut
	if cut < floor {
		cut = floor
	}
	if cut >= len(data) {
		return nil
	}
	if err := os.Truncate(path, int64(cut)); err != nil {
		return fmt.Errorf("docdb: truncate %s: %w", path, err)
	}
	return nil
}
