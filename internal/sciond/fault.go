package sciond

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
)

// Fault injection for chaos testing (internal/chaos, docs/CHAOS.md): the
// daemon's path-lookup surface can be made to fail or serve stale segments
// on demand, modelling a control plane that is itself part of the paper's
// "dynamic and fallible network" (§4.2.2). The hook is consulted with the
// world seed of the daemon's data plane, so a chaos plan can make a fault
// deterministic per (destination, forked world) — a retried measurement
// cell forks a new world seed per attempt, which is what lets injected
// lookup failures be transient without any wall-clock dependence.

// Fault is the outcome the hook selects for one path lookup.
type Fault int

const (
	// FaultNone lets the lookup proceed normally.
	FaultNone Fault = iota
	// FaultLookupError fails the lookup with an error, the way an
	// unreachable SCION daemon or an empty beacon store would.
	FaultLookupError
	// FaultStalePaths suppresses segment-expiry refresh for this lookup:
	// the daemon answers from whatever registry it has, however old.
	FaultStalePaths
)

// FaultHook decides the fate of one path lookup to dst at simulated time
// now, on the world identified by seed. Hooks must be pure functions of
// their arguments (no shared mutable state): lookups run concurrently
// across campaign workers, and reproducibility per seed depends on it.
type FaultHook func(dst addr.IA, seed int64, now time.Duration) Fault

// SetFaultHook installs (or, with nil, removes) the daemon's fault hook.
// Install before sharing the daemon; forks inherit the parent's hook.
func (d *Daemon) SetFaultHook(h FaultHook) { d.fault = h }

// consultFault asks the hook about a lookup; the nil fast path is one
// comparison. It returns the injected error for FaultLookupError, and
// reports whether the expiry refresh should be skipped (FaultStalePaths).
func (d *Daemon) consultFault(dst addr.IA) (skipRefresh bool, err error) {
	if d.fault == nil {
		return false, nil
	}
	var seed int64
	var now time.Duration
	if d.net != nil {
		seed = d.net.Seed()
		now = d.net.Now()
	}
	switch d.fault(dst, seed, now) {
	case FaultLookupError:
		return false, fmt.Errorf("sciond: path lookup to %s failed (injected fault)", dst)
	case FaultStalePaths:
		return true, nil
	default:
		return false, nil
	}
}
