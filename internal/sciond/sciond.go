// Package sciond emulates the SCION daemon services the scion command-line
// tools consume: local address information (scion address), path lookup
// with the showpaths semantics (-m limit, --extended metadata, liveness
// probing), and path resolution by hop-predicate sequence for ping,
// traceroute and the bwtester (§3.3).
package sciond

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

// SegmentLifetime is how long discovered path segments stay valid before
// the daemon re-runs beaconing, mirroring SCION's segment expiry.
const SegmentLifetime = 6 * time.Hour

// Daemon bundles the control plane (combiner over the beaconing registry)
// with the data plane (simulator) for one local AS. Lookups are safe for
// concurrent use: the combiner is published through an atomic pointer and
// re-beaconing swaps in a fresh snapshot.
type Daemon struct {
	topo  *topology.Topology
	net   *simnet.Network
	local addr.IA
	// fault, when set, is consulted before every path lookup (chaos
	// testing, see fault.go); nil in production and zero-cost then.
	// Installed before the daemon is shared, immutable afterwards.
	fault FaultHook

	// combiner is the published control-plane snapshot, swapped wholesale
	// by refresh; loaded once per lookup so a lookup never mixes registry
	// generations.
	combiner atomic.Pointer[pathmgr.Combiner]
	// discoveredAt is the simulated time (nanoseconds) of the last
	// beaconing run; paths combined from that registry expire
	// SegmentLifetime later.
	discoveredAt atomic.Int64

	// refreshMu serializes re-beaconing (it guards no fields — state is
	// published atomically): concurrent lookups that race on segment
	// expiry run Discover once, the losers reuse the winner's snapshot.
	refreshMu sync.Mutex
}

// New builds a daemon for the local AS. The segment registry is discovered
// once at construction, like a warmed-up beacon store, and refreshed
// automatically when its segments expire.
func New(topo *topology.Topology, net *simnet.Network, local addr.IA) (*Daemon, error) {
	if topo.AS(local) == nil {
		return nil, fmt.Errorf("sciond: local AS %s not in topology", local)
	}
	d := &Daemon{topo: topo, net: net, local: local}
	d.refresh()
	return d, nil
}

// Fork returns a daemon for the same local AS bound to a different
// data-plane network, sharing the already-discovered segment registry (the
// combiner is immutable, so sharing it across forks is safe for concurrent
// reads). The campaign engine forks one daemon per measurement cell so
// cells can run on private worlds without re-running beaconing; the fork
// re-beacons on its own only when the shared registry's segments expire
// relative to the fork's clock.
func (d *Daemon) Fork(net *simnet.Network) *Daemon {
	f := &Daemon{topo: d.topo, net: net, local: d.local, fault: d.fault}
	f.combiner.Store(d.combiner.Load())
	if net != nil {
		f.discoveredAt.Store(int64(net.Now()))
	}
	return f
}

// refresh re-runs beaconing, publishes a combiner over the new registry and
// stamps the discovery time. The superseded combiner's combination cache is
// invalidated atomically, so a lookup that already loaded the old snapshot
// recombines instead of serving cached-but-stale answers indefinitely.
func (d *Daemon) refresh() {
	d.refreshMu.Lock()
	defer d.refreshMu.Unlock()
	d.refreshLocked()
}

// refreshLocked is refresh's body; callers hold refreshMu.
func (d *Daemon) refreshLocked() {
	reg := segment.Discover(d.topo, segment.Options{})
	next := pathmgr.NewCombiner(d.topo, reg)
	if d.net != nil {
		d.discoveredAt.Store(int64(d.net.Now()))
	}
	if old := d.combiner.Swap(next); old != nil {
		old.Invalidate()
	}
}

// maybeRefresh re-beacons when the registry's segments have expired. The
// expiry check is double-checked under refreshMu so concurrent lookups
// trigger a single Discover.
func (d *Daemon) maybeRefresh() {
	if d.net == nil {
		return
	}
	if d.net.Now()-d.discovered() < SegmentLifetime {
		return
	}
	d.refreshMu.Lock()
	defer d.refreshMu.Unlock()
	if d.net.Now()-d.discovered() < SegmentLifetime {
		return
	}
	d.refreshLocked()
}

// discovered returns the simulated time of the last beaconing run.
func (d *Daemon) discovered() time.Duration {
	return time.Duration(d.discoveredAt.Load())
}

// stampExpiry sets the expiry metadata showpaths prints. Paths handed out
// by the combiner are caller-owned clones, so stamping never writes into
// the combination cache.
func (d *Daemon) stampExpiry(paths []*pathmgr.Path) {
	expiry := time.Unix(0, 0).Add(d.discovered() + SegmentLifetime)
	for _, p := range paths {
		p.Expiry = expiry
	}
}

// LocalIA returns the local ISD-AS, the core of `scion address` output.
func (d *Daemon) LocalIA() addr.IA { return d.local }

// Address renders the `scion address` output for the local host.
func (d *Daemon) Address() string {
	return addr.Host{IA: d.local, Local: "127.0.0.1"}.String()
}

// Topology returns the underlying topology (for tooling).
func (d *Daemon) Topology() *topology.Topology { return d.topo }

// Network returns the data-plane simulator.
func (d *Daemon) Network() *simnet.Network { return d.net }

// ShowPathsOpts mirror the flags of `scion showpaths`.
type ShowPathsOpts struct {
	// MaxPaths is the -m flag; showpaths defaults to 10 paths.
	MaxPaths int
	// Extended requests the additional metadata block (--extended).
	Extended bool
	// Probe sends one SCMP probe per path to fill the Status field.
	Probe bool
	// ACL filters paths by hop policy before the MaxPaths cap is applied.
	ACL *pathmgr.ACL
}

// DefaultMaxPaths is showpaths' default display limit.
const DefaultMaxPaths = 10

// ShowPaths lists paths to the destination ordered by hop count, capped at
// MaxPaths. The paper's collector runs it as `showpaths --extended -m 40`.
func (d *Daemon) ShowPaths(dst addr.IA, opts ShowPathsOpts) ([]*pathmgr.Path, error) {
	if opts.MaxPaths == 0 {
		opts.MaxPaths = DefaultMaxPaths
	}
	if opts.MaxPaths < 0 {
		return nil, fmt.Errorf("sciond: negative path limit %d", opts.MaxPaths)
	}
	skipRefresh, ferr := d.consultFault(dst)
	if ferr != nil {
		return nil, ferr
	}
	if !skipRefresh {
		d.maybeRefresh()
	}
	paths, err := d.combiner.Load().Paths(d.local, dst)
	if err != nil {
		return nil, err
	}
	d.stampExpiry(paths)
	paths = opts.ACL.FilterPaths(paths)
	if len(paths) > opts.MaxPaths {
		paths = paths[:opts.MaxPaths]
	}
	if opts.Probe && d.net != nil {
		for _, p := range paths {
			res := d.net.Probe(p, 8, 0)
			if res.Dropped {
				p.Status = "timeout"
			} else {
				p.Status = "alive"
			}
		}
	}
	return paths, nil
}

// PathsTo returns the full uncapped path set (internal consumers).
func (d *Daemon) PathsTo(dst addr.IA) ([]*pathmgr.Path, error) {
	skipRefresh, ferr := d.consultFault(dst)
	if ferr != nil {
		return nil, ferr
	}
	if !skipRefresh {
		d.maybeRefresh()
	}
	paths, err := d.combiner.Load().Paths(d.local, dst)
	if err != nil {
		return nil, err
	}
	d.stampExpiry(paths)
	return paths, nil
}

// ResolveSequence finds the path to dst matching the hop-predicate
// sequence, the way ping/bwtest resolve their --sequence argument.
func (d *Daemon) ResolveSequence(dst addr.IA, seq pathmgr.Sequence) (*pathmgr.Path, error) {
	paths, err := d.PathsTo(dst)
	if err != nil {
		return nil, err
	}
	p := pathmgr.FindBySequence(paths, seq)
	if p == nil {
		return nil, fmt.Errorf("sciond: no path to %s matches sequence %q", dst, seq)
	}
	return p, nil
}

// FormatPaths renders showpaths-style output. With extended metadata it
// includes MTU, status and the static latency estimate, the fields the
// paper's collector parses (§5.2).
func FormatPaths(paths []*pathmgr.Path, extended bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Available paths to %s\n", dstOf(paths))
	for i, p := range paths {
		fmt.Fprintf(&b, "[%2d] Hops: %d %s", i, p.NumHops(), hopChain(p))
		if extended {
			fmt.Fprintf(&b, " MTU: %d Status: %s MinLatency: %s",
				p.MTU, statusOr(p), p.MinLatency.Round(10*time.Microsecond))
			if !p.Expiry.IsZero() {
				fmt.Fprintf(&b, " Expires: +%s", p.Expiry.Sub(time.Unix(0, 0)).Round(time.Minute))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func dstOf(paths []*pathmgr.Path) string {
	if len(paths) == 0 {
		return "(none)"
	}
	return paths[0].Dst.String()
}

func statusOr(p *pathmgr.Path) string {
	if p.Status == "" {
		return "unknown"
	}
	return p.Status
}

func hopChain(p *pathmgr.Path) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, h := range p.Hops {
		if i > 0 {
			fmt.Fprintf(&b, " %d>%d ", p.Hops[i-1].Out, h.In)
		}
		b.WriteString(h.IA.String())
	}
	b.WriteByte(']')
	return b.String()
}

// ReachabilityReport summarises, per destination AS, the minimum hop count —
// the data behind Fig 4.
type ReachabilityReport struct {
	// MinHopsByDest maps each reachable server AS to its minimum hop count.
	MinHopsByDest map[addr.IA]int
	// Histogram maps minimum hop count to number of destinations.
	Histogram map[int]int
	// AvgMinHops is the mean minimum path length over destinations.
	AvgMinHops float64
	// FracWithin is the cumulative fraction of destinations reachable
	// within each hop count.
	FracWithin map[int]float64
}

// Reachability computes the report over the given destinations (typically
// topology.Servers()); unreachable destinations are skipped.
func (d *Daemon) Reachability(dests []addr.IA) ReachabilityReport {
	rep := ReachabilityReport{
		MinHopsByDest: map[addr.IA]int{},
		Histogram:     map[int]int{},
		FracWithin:    map[int]float64{},
	}
	total := 0
	c := d.combiner.Load() // one snapshot for the whole report
	for _, dst := range dests {
		if dst == d.local {
			continue
		}
		if _, dup := rep.MinHopsByDest[dst]; dup {
			continue // multi-server ASes count once per AS
		}
		min, ok := c.MinHops(d.local, dst)
		if !ok {
			continue
		}
		rep.MinHopsByDest[dst] = min
		rep.Histogram[min]++
		total += min
	}
	n := len(rep.MinHopsByDest)
	if n > 0 {
		rep.AvgMinHops = float64(total) / float64(n)
		hops := make([]int, 0, len(rep.Histogram))
		for h := range rep.Histogram {
			hops = append(hops, h)
		}
		sort.Ints(hops)
		cum := 0
		for _, h := range hops {
			cum += rep.Histogram[h]
			rep.FracWithin[h] = float64(cum) / float64(n)
		}
	}
	return rep
}
