package sciond

import (
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func daemon(t testing.TB) *Daemon {
	t.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 1})
	d, err := New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsUnknownLocal(t *testing.T) {
	topo := topology.DefaultWorld()
	if _, err := New(topo, nil, addr.MustParseIA("99-ff00:0:1")); err == nil {
		t.Error("unknown local AS accepted")
	}
}

func TestAddress(t *testing.T) {
	d := daemon(t)
	if d.LocalIA() != topology.MyAS {
		t.Errorf("LocalIA %s", d.LocalIA())
	}
	if !strings.HasPrefix(d.Address(), "17-ffaa:1:1,") {
		t.Errorf("Address %q", d.Address())
	}
}

func TestShowPathsDefaultLimit(t *testing.T) {
	d := daemon(t)
	paths, err := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// "By default, the list is set to display 10 paths only" (§3.3).
	if len(paths) > DefaultMaxPaths {
		t.Errorf("%d paths despite default limit", len(paths))
	}
	all, err := d.PathsTo(topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) > DefaultMaxPaths && len(paths) != DefaultMaxPaths {
		t.Errorf("limit not applied: got %d", len(paths))
	}
}

func TestShowPathsExtendedLimit(t *testing.T) {
	d := daemon(t)
	paths, err := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{MaxPaths: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || len(paths) > 40 {
		t.Fatalf("%d paths", len(paths))
	}
	// Sorted by hop count (showpaths ranks by hops).
	for i := 1; i < len(paths); i++ {
		if paths[i].NumHops() < paths[i-1].NumHops() {
			t.Fatal("not sorted by hop count")
		}
	}
	if _, err := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{MaxPaths: -1}); err == nil {
		t.Error("negative limit accepted")
	}
}

func TestShowPathsProbeStatus(t *testing.T) {
	d := daemon(t)
	paths, err := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{MaxPaths: 5, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if p.Status != "alive" && p.Status != "timeout" {
			t.Errorf("path status %q after probing", p.Status)
		}
	}
}

func TestResolveSequence(t *testing.T) {
	d := daemon(t)
	paths, _ := d.PathsTo(topology.AWSIreland)
	want := paths[len(paths)-1]
	got, err := d.ResolveSequence(topology.AWSIreland, pathmgr.PathSequence(want))
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Error("resolved the wrong path")
	}
	bogus, _ := pathmgr.ParseSequence("1-0#0 2-0#0")
	if _, err := d.ResolveSequence(topology.AWSIreland, bogus); err == nil {
		t.Error("bogus sequence resolved")
	}
}

func TestFormatPaths(t *testing.T) {
	d := daemon(t)
	paths, _ := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{MaxPaths: 3, Probe: true})
	out := FormatPaths(paths, true)
	for _, want := range []string{"Available paths to 16-ffaa:0:1002", "Hops: 6", "MTU:", "Status:", "MinLatency:"} {
		if !strings.Contains(out, want) {
			t.Errorf("extended output missing %q:\n%s", want, out)
		}
	}
	plain := FormatPaths(paths, false)
	if strings.Contains(plain, "MTU:") {
		t.Error("plain output contains extended fields")
	}
	if !strings.Contains(FormatPaths(nil, false), "(none)") {
		t.Error("empty path list rendering")
	}
}

func TestReachabilityReport(t *testing.T) {
	d := daemon(t)
	var dests []addr.IA
	for _, s := range d.Topology().Servers() {
		dests = append(dests, s.IA)
	}
	rep := d.Reachability(dests)
	// Multi-server ASes count once per AS here; 20 distinct server ASes.
	if len(rep.MinHopsByDest) < 19 {
		t.Fatalf("only %d destinations reachable", len(rep.MinHopsByDest))
	}
	if rep.AvgMinHops < 5.0 || rep.AvgMinHops > 6.5 {
		t.Errorf("average min hops %.2f out of band", rep.AvgMinHops)
	}
	sum := 0
	for _, n := range rep.Histogram {
		sum += n
	}
	if sum != len(rep.MinHopsByDest) {
		t.Errorf("histogram sums to %d, want %d", sum, len(rep.MinHopsByDest))
	}
	// Cumulative fraction reaches 1 at the max hop count.
	maxHops := 0
	for h := range rep.Histogram {
		if h > maxHops {
			maxHops = h
		}
	}
	if f := rep.FracWithin[maxHops]; f < 0.999 {
		t.Errorf("cumulative fraction at max hops %.3f, want 1", f)
	}
}

func TestShowPathsStatusReflectsLinkOutage(t *testing.T) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 35})
	d, err := New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	// Down the ETHZ--ETHZ-AP link: paths via the ETHZ up segment time out,
	// paths via SWITCH stay alive.
	if err := net.ScheduleLinkOutage(simnet.LinkOutage{
		A: addr.MustParseIA("17-ffaa:0:1102"), B: topology.ETHZAP,
		Start: 0, End: 1 << 40,
	}); err != nil {
		t.Fatal(err)
	}
	paths, err := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{MaxPaths: 40, Probe: true})
	if err != nil {
		t.Fatal(err)
	}
	var timeouts, alive int
	for _, p := range paths {
		switch p.Status {
		case "timeout":
			timeouts++
		case "alive":
			alive++
		}
	}
	if timeouts == 0 || alive == 0 {
		t.Errorf("status split timeouts=%d alive=%d; want both", timeouts, alive)
	}
}

func TestPathExpiryAndRefresh(t *testing.T) {
	d := daemon(t)
	paths, err := d.PathsTo(topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	p := paths[0]
	if p.Expiry.IsZero() {
		t.Fatal("path expiry not stamped")
	}
	if p.Expired(d.Network().Now()) {
		t.Fatal("fresh path already expired")
	}
	// After the segment lifetime the old path object is expired...
	d.Network().Advance(SegmentLifetime + time.Minute)
	if !p.Expired(d.Network().Now()) {
		t.Error("path not expired past the segment lifetime")
	}
	// ...and a new query transparently re-beacons with fresh expiry.
	paths2, err := d.PathsTo(topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	if paths2[0].Expired(d.Network().Now()) {
		t.Error("refreshed path already expired")
	}
	if !paths2[0].Expiry.After(p.Expiry) {
		t.Errorf("expiry not advanced: %v vs %v", paths2[0].Expiry, p.Expiry)
	}
	// The path set itself is stable across the refresh.
	if len(paths2) != len(paths) || paths2[0].Fingerprint() != p.Fingerprint() {
		t.Error("refresh changed the path set on a static topology")
	}
}

func TestReachabilitySkipsSelf(t *testing.T) {
	d := daemon(t)
	rep := d.Reachability([]addr.IA{topology.MyAS})
	if len(rep.MinHopsByDest) != 0 {
		t.Error("self counted as destination")
	}
}

// TestConcurrentLookupsAndRefresh drives ShowPaths, PathsTo and
// Reachability from concurrent goroutines while others force re-beaconing;
// under -race this exercises the atomic combiner publication, the
// double-checked expiry refresh and the cache invalidation on swap. Every
// answer must stay consistent with a quiet single-threaded daemon.
func TestConcurrentLookupsAndRefresh(t *testing.T) {
	d := daemon(t)
	quiet := daemon(t)
	want, err := quiet.ShowPaths(topology.AWSIreland, ShowPathsOpts{MaxPaths: 40})
	if err != nil {
		t.Fatal(err)
	}
	dests := serverIAs(quiet.Topology())
	wantRep := quiet.Reachability(dests)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				paths, err := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{MaxPaths: 40})
				if err != nil {
					t.Errorf("ShowPaths: %v", err)
					return
				}
				if len(paths) != len(want) {
					t.Errorf("ShowPaths returned %d paths, want %d", len(paths), len(want))
					return
				}
				for i, p := range paths {
					if p.Fingerprint() != want[i].Fingerprint() {
						t.Errorf("path %d diverged under concurrent refresh", i)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			d.refresh()
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			rep := d.Reachability(dests)
			if len(rep.MinHopsByDest) != len(wantRep.MinHopsByDest) {
				t.Errorf("reachability saw %d destinations, want %d",
					len(rep.MinHopsByDest), len(wantRep.MinHopsByDest))
				return
			}
		}
	}()
	wg.Wait()
}

// TestForkSharesSnapshotUntilOwnRefresh: a fork starts on the parent's
// combiner (no re-beaconing) and leaves the parent untouched when it later
// re-beacons on its own clock.
func TestForkSharesSnapshotUntilOwnRefresh(t *testing.T) {
	d := daemon(t)
	topo := d.Topology()
	f := d.Fork(simnet.New(topo, simnet.Options{Seed: 2}))
	if f.combiner.Load() != d.combiner.Load() {
		t.Fatal("fork did not share the parent's combiner snapshot")
	}
	f.Network().Advance(SegmentLifetime + time.Hour)
	if _, err := f.ShowPaths(topology.AWSIreland, ShowPathsOpts{}); err != nil {
		t.Fatal(err)
	}
	if f.combiner.Load() == d.combiner.Load() {
		t.Fatal("fork still shares the combiner after its segments expired")
	}
	// The parent keeps serving from its own (still valid) snapshot.
	if _, err := d.ShowPaths(topology.AWSIreland, ShowPathsOpts{}); err != nil {
		t.Fatal(err)
	}
}

func serverIAs(topo *topology.Topology) []addr.IA {
	var dests []addr.IA
	for _, s := range topo.Servers() {
		dests = append(dests, s.IA)
	}
	return dests
}
