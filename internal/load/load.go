// Package load is the production load harness: a deterministic
// closed/open-loop generator that drives the UPIN serving tier over real
// HTTP and reports latency percentiles, throughput and shed rates. One
// seed yields one schedule — every request's destination, intent flag and
// timing is fixed before the run starts, so a benchmark number is
// reproducible and a failure is replayable. Destination popularity is
// zipfian under a seeded permutation (popular destinations are arbitrary,
// not low ids), think times are exponential, and the open-loop mode
// measures latency from the scheduled arrival, not the send, so a slow
// server cannot hide queueing delay by slowing the generator down
// (coordinated omission). See docs/LOAD.md.
package load

import (
	"fmt"
	"math/rand"
	"time"
)

// Mode selects the fleet model.
type Mode string

const (
	// Closed: each client issues a request, waits for the response, thinks
	// (exponential pause), and repeats. Throughput adapts to the server —
	// this is the user-study model of the paper's §3 participants.
	Closed Mode = "closed"
	// Open: requests arrive on an exponential arrival process regardless
	// of outstanding responses — this is the overload model; arrival rate
	// is an input, latency the output.
	Open Mode = "open"
)

// Dist selects the destination popularity distribution.
type Dist string

const (
	// Zipf draws destination ranks from a zipfian distribution and maps
	// rank to destination through a seeded permutation.
	Zipf Dist = "zipf"
	// Uniform spreads requests evenly over the destination set.
	Uniform Dist = "uniform"
)

// Config parameterises one schedule.
type Config struct {
	Seed         int64
	Mode         Mode
	Dist         Dist
	Clients      int   // fleet size
	Requests     int   // total requests across the fleet
	Destinations []int // candidate destination server ids

	// ZipfS is the zipfian skew (> 1; default 1.2).
	ZipfS float64
	// ThinkMean is the closed-loop mean think time (default 5ms).
	ThinkMean time.Duration
	// ArrivalRate is the open-loop arrival rate in requests/second
	// (required for Open).
	ArrivalRate float64
	// IntentEvery makes every Nth request a POST /api/intent instead of a
	// GET /api/paths (0 = paths only).
	IntentEvery int
	// Top truncates path responses server-side (?top=K; 0 = full body).
	Top int
	// Timeout is the per-request deadline (default 5s).
	Timeout time.Duration
}

// Step is one closed-loop client action.
type Step struct {
	Dest   int
	Intent bool
	Think  time.Duration // pause after the response
}

// Arrival is one open-loop request at a scheduled offset from run start.
type Arrival struct {
	At     time.Duration
	Client int
	Dest   int
	Intent bool
}

// Schedule is a fully materialised run: pure data, safe to share, and
// deep-equal across BuildSchedule calls with the same Config.
type Schedule struct {
	Cfg       Config
	PerClient [][]Step  // Closed mode
	Arrivals  []Arrival // Open mode, ordered by At
}

// BuildSchedule derives the complete request schedule from the config.
// Everything is drawn from one seeded generator in a fixed order — same
// config, same schedule, byte for byte.
//
//lint:deterministic one seed must yield one schedule — the harness's replay contract
func BuildSchedule(cfg Config) (*Schedule, error) {
	if cfg.Clients < 1 {
		return nil, fmt.Errorf("load: Clients must be >= 1, have %d", cfg.Clients)
	}
	if cfg.Requests < 1 {
		return nil, fmt.Errorf("load: Requests must be >= 1, have %d", cfg.Requests)
	}
	if len(cfg.Destinations) == 0 {
		return nil, fmt.Errorf("load: no destinations")
	}
	switch cfg.Mode {
	case Closed:
	case Open:
		if cfg.ArrivalRate <= 0 {
			return nil, fmt.Errorf("load: open loop needs ArrivalRate > 0")
		}
	default:
		return nil, fmt.Errorf("load: unknown mode %q", cfg.Mode)
	}
	if cfg.Dist == "" {
		cfg.Dist = Zipf
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("load: ZipfS must be > 1, have %g", cfg.ZipfS)
	}
	if cfg.ThinkMean == 0 {
		cfg.ThinkMean = 5 * time.Millisecond
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	// The permutation decouples popularity rank from destination id: which
	// destinations are hot is itself part of the seed draw.
	perm := rng.Perm(len(cfg.Destinations))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(cfg.Destinations)-1))
	pickDest := func() int {
		if cfg.Dist == Uniform {
			return cfg.Destinations[rng.Intn(len(cfg.Destinations))]
		}
		return cfg.Destinations[perm[int(zipf.Uint64())]]
	}
	isIntent := func(n int) bool {
		return cfg.IntentEvery > 0 && n%cfg.IntentEvery == cfg.IntentEvery-1
	}

	s := &Schedule{Cfg: cfg}
	switch cfg.Mode {
	case Closed:
		s.PerClient = make([][]Step, cfg.Clients)
		for n := 0; n < cfg.Requests; n++ {
			c := n % cfg.Clients
			s.PerClient[c] = append(s.PerClient[c], Step{
				Dest:   pickDest(),
				Intent: isIntent(n),
				Think:  time.Duration(rng.ExpFloat64() * float64(cfg.ThinkMean)),
			})
		}
	case Open:
		at := time.Duration(0)
		interarrival := float64(time.Second) / cfg.ArrivalRate
		for n := 0; n < cfg.Requests; n++ {
			at += time.Duration(rng.ExpFloat64() * interarrival)
			s.Arrivals = append(s.Arrivals, Arrival{
				At:     at,
				Client: rng.Intn(cfg.Clients),
				Dest:   pickDest(),
				Intent: isIntent(n),
			})
		}
	}
	return s, nil
}
