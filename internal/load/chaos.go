package load

import (
	"fmt"
	"sync"
	"time"

	"github.com/upin/scionpath/internal/chaos"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
)

// ChaosFiring records one serving fault the driver applied mid-run.
type ChaosFiring struct {
	Event chaos.ServingEvent `json:"event"`
	// At is the wall offset from run start when the fault landed; the
	// recovery analysis aligns it with the Result's bucket series.
	At time.Duration `json:"at"`
}

// ChaosDriver applies a chaos.ServingPlan against the live database while
// the generator drives traffic. Hang Notify off Runner.OnComplete; events
// fire when the completed-request count crosses their trigger, so the
// fault lands at a fixed point of the request stream regardless of
// machine speed.
type ChaosDriver struct {
	DB    *docdb.DB
	Plan  chaos.ServingPlan
	Dests []int

	// start anchors firing offsets; set once by Start before traffic.
	start time.Time

	mu      sync.Mutex
	next    int           // guarded by mu: cursor into Plan.Events
	ts      int64         // guarded by mu: next synthetic stats timestamp
	firings []ChaosFiring // guarded by mu
}

// Start anchors the firing clock. Call immediately before Runner.Run.
func (d *ChaosDriver) Start() {
	d.start = time.Now()
	d.mu.Lock()
	defer d.mu.Unlock()
	d.next = 0
	// Burst timestamps start far above any seeded history so the engine
	// folds them incrementally instead of detecting out-of-order writes.
	d.ts = 1_900_000_000_000
	d.firings = nil
}

// Notify observes the completed-request count (Runner.OnComplete) and
// fires every event whose trigger has been crossed. Events apply under
// the driver lock, so concurrent fleet goroutines cannot double-fire one.
func (d *ChaosDriver) Notify(completed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for d.next < len(d.Plan.Events) && d.Plan.Events[d.next].AfterRequests <= completed {
		ev := d.Plan.Events[d.next]
		d.next++
		d.applyLocked(ev)
		d.firings = append(d.firings, ChaosFiring{Event: ev, At: time.Since(d.start)})
	}
}

// Firings returns the events applied so far, in firing order.
func (d *ChaosDriver) Firings() []ChaosFiring {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ChaosFiring, len(d.firings))
	copy(out, d.firings)
	return out
}

func (d *ChaosDriver) applyLocked(ev chaos.ServingEvent) {
	switch ev.Kind {
	case chaos.RewriteStorm:
		// An in-place rewrite of one destination's stats bumps the
		// collection's RewriteGeneration: the next refresh must rebuild
		// the full snapshot instead of folding the tail.
		d.DB.Collection(measure.ColStats).Update(
			docdb.Eq(measure.FServerID, d.Dests[0]),
			docdb.Document{"chaos_touch": d.Plan.Seed},
		)
	case chaos.WriteBurst:
		docs := make([]docdb.Document, 0, ev.Docs)
		for i := 0; i < ev.Docs; i++ {
			dest := d.Dests[i%len(d.Dests)]
			pid := measure.PathID(dest, 0)
			d.ts += 1 + int64(i%3)
			docs = append(docs, docdb.Document{
				"_id":               fmt.Sprintf("%s@chaos%d#%d", pid, d.ts, i),
				measure.FPathID:     pid,
				measure.FServerID:   dest,
				measure.FTimestamp:  d.ts,
				measure.FLoss:       float64(i%20) / 2,
				measure.FAvgLatency: 15 + float64(i%40),
				measure.FMdev:       float64(i%7) / 3,
				measure.FBwUpMTU:    2e6 + float64(i%11)*1e6,
				measure.FBwDownMTU:  2e6 + float64(i%13)*1e6,
			})
		}
		// Chaos injection is best-effort: ids are unique per (seed, event,
		// index), so the only in-memory failure mode is unreachable.
		_ = d.DB.Collection(measure.ColStats).InsertMany(docs)
	}
}

// RecoveryReport summarises how the latency series absorbed the chaos:
// baseline p99 before the first fault, worst p99 at or after it, how many
// buckets stayed degraded, and whether the tail of the run was back under
// the recovery threshold (2x baseline).
type RecoveryReport struct {
	BaselineP99     time.Duration `json:"baseline_p99"`
	PeakP99         time.Duration `json:"peak_p99"`
	DegradedBuckets int           `json:"degraded_buckets"`
	Recovered       bool          `json:"recovered"`
}

// AnalyzeRecovery aligns the firing times with the result's bucket
// series. With no firings (or no pre-fault traffic) the zero report is
// returned.
func AnalyzeRecovery(res *Result, firings []ChaosFiring) RecoveryReport {
	var rep RecoveryReport
	if len(firings) == 0 || len(res.Buckets) == 0 {
		return rep
	}
	first := firings[0].At
	var pre []time.Duration
	for _, b := range res.Buckets {
		if b.Start+res.Duration/bucketCount <= first && b.Count > 0 {
			pre = append(pre, b.P99)
		}
	}
	if len(pre) == 0 {
		return rep
	}
	// Median of the pre-fault buckets: robust against one slow warm-up
	// bucket at the very start of the run.
	for i := 1; i < len(pre); i++ {
		for j := i; j > 0 && pre[j] < pre[j-1]; j-- {
			pre[j], pre[j-1] = pre[j-1], pre[j]
		}
	}
	rep.BaselineP99 = pre[len(pre)/2]
	threshold := 2 * rep.BaselineP99
	var lastBusy *Bucket
	for i := range res.Buckets {
		b := &res.Buckets[i]
		if b.Start+res.Duration/bucketCount <= first || b.Count == 0 {
			continue
		}
		if b.P99 > rep.PeakP99 {
			rep.PeakP99 = b.P99
		}
		if b.P99 > threshold {
			rep.DegradedBuckets++
		}
		lastBusy = b
	}
	rep.Recovered = lastBusy != nil && lastBusy.P99 <= threshold
	return rep
}
