package load

import (
	"context"
	"strings"
	"testing"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/topology"
)

func TestSeedSyntheticCounts(t *testing.T) {
	topo := topology.DefaultWorld()
	db := docdb.MustOpen()
	const nDests, pathsPer, statsPer = 4, 7, 3
	dests, err := SeedSynthetic(db, topo, nDests, pathsPer, statsPer, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(dests) != nDests {
		t.Fatalf("%d destination ids, want %d", len(dests), nDests)
	}
	seen := map[int]bool{}
	for _, id := range dests {
		if id < 1 || seen[id] {
			t.Fatalf("destination ids invalid or duplicated: %v", dests)
		}
		seen[id] = true
	}
	if got := db.Collection(measure.ColPaths).Count(); got != nDests*pathsPer {
		t.Errorf("%d path docs, want %d", got, nDests*pathsPer)
	}
	if got := db.Collection(measure.ColStats).Count(); got != nDests*pathsPer*statsPer {
		t.Errorf("%d stats docs, want %d", got, nDests*pathsPer*statsPer)
	}
	// The seeded catalogue is actually servable: every destination yields
	// pathsPer candidates through the selection engine.
	engine := selection.New(db, topo)
	for _, id := range dests {
		cands, err := engine.Select(context.Background(), id, selection.Request{})
		if err != nil {
			t.Fatalf("server %d: %v", id, err)
		}
		if len(cands) != pathsPer {
			t.Errorf("server %d: %d candidates, want %d", id, len(cands), pathsPer)
		}
	}
}

func TestSeedSyntheticTooManyDests(t *testing.T) {
	topo := topology.DefaultWorld()
	db := docdb.MustOpen()
	_, err := SeedSynthetic(db, topo, 10_000, 1, 1, 11)
	if err == nil {
		t.Fatal("demand beyond the catalogue accepted")
	}
	if !strings.Contains(err.Error(), "servers, need") {
		t.Errorf("unexpected error: %v", err)
	}
	// The failed seed must not leave partial path/stats documents behind.
	if n := db.Collection(measure.ColPaths).Count(); n != 0 {
		t.Errorf("failed seed left %d path docs", n)
	}
}
