package load

// Load benchmarks (BENCH_load.json): the serving tier under a deterministic
// fleet, across fleet sizes and shard counts, plus the 2x-overload and
// chaos-under-load runs. Each b.N iteration is one whole fleet run; the
// interesting numbers are the custom metrics (rps, p50_ms, p99_ms,
// p999_ms, unavailable_rate, cache_hit_rate, ...), which cmd/benchjson
// records next to ns/op. Record with:
//
//	go run ./cmd/benchjson -label pr9 -bench BenchmarkLoad \
//	    -pkg ./internal/load -benchtime 1x -out BENCH_load.json
//
// On the 1-CPU reference host the sharded tier's throughput win comes
// from work reduction — response-cache affinity under rendezvous routing
// and per-shard snapshot refresh — not CPU parallelism; docs/LOAD.md
// spells out the decomposition (hence the cache=off single-instance
// baseline recorded alongside).

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/chaos"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
	"github.com/upin/scionpath/internal/upin/cluster"
)

const (
	benchDests    = 6
	benchPathsPer = 1000 // production-shaped Select: 10^3 candidates per destination
	benchRequests = 480
)

// benchTier builds a synthetic heavy-catalogue world behind a serving
// tier on a real listener.
func benchTier(b *testing.B, cfg cluster.Config) (*httptest.Server, []int, *docdb.DB) {
	b.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 3})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		b.Fatal(err)
	}
	db := docdb.MustOpen()
	dests, err := SeedSynthetic(db, topo, benchDests, benchPathsPer, 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	explorer := upin.NewDomainExplorer(topo, []addr.ISD{16, 17, 19})
	tier := cluster.New(db, daemon, net, explorer, topo, cfg)
	ts := httptest.NewServer(tier)
	b.Cleanup(ts.Close)
	// Warm-up: one request per destination builds every shard's initial
	// snapshot outside the measured window, so the benchmarks compare
	// steady-state serving, not cold-start rebuild counts.
	client := ts.Client()
	for _, d := range dests {
		resp, err := client.Get(fmt.Sprintf("%s/api/paths?server=%d&top=1", ts.URL, d))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("warmup for dest %d: status %d", d, resp.StatusCode)
		}
	}
	return ts, dests, db
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// steadyWriter inserts one stats document every n completed requests, so
// response caches see a realistic invalidation cadence instead of an
// infinite hit streak.
func steadyWriter(db *docdb.DB, dests []int, n int) func(int) {
	ts := int64(1_800_000_000_000)
	return func(completed int) {
		if completed%n != 0 {
			return
		}
		ts += int64(completed)
		dest := dests[completed/n%len(dests)]
		pid := measure.PathID(dest, 0)
		db.Collection(measure.ColStats).Insert(docdb.Document{
			"_id": fmt.Sprintf("%s@w%d", pid, ts), measure.FPathID: pid,
			measure.FServerID: dest, measure.FTimestamp: ts,
			measure.FLoss: 1.0, measure.FAvgLatency: 25.0, measure.FMdev: 1.0,
			measure.FBwUpMTU: 5e6, measure.FBwDownMTU: 5e6,
		})
	}
}

func reportResult(b *testing.B, res *Result) {
	b.ReportMetric(res.RPS, "rps")
	b.ReportMetric(ms(res.P50), "p50_ms")
	b.ReportMetric(ms(res.P99), "p99_ms")
	b.ReportMetric(ms(res.P999), "p999_ms")
	if res.Completed > 0 {
		b.ReportMetric(float64(res.Unavailable)/float64(res.Completed), "unavailable_rate")
	}
}

func runFleet(b *testing.B, ts *httptest.Server, db *docdb.DB, dests []int, fleet int) *Result {
	cfg := Config{
		Seed: 17, Mode: Closed, Dist: Zipf, Clients: fleet, Requests: benchRequests,
		Destinations: dests, ThinkMean: 200 * time.Microsecond, Top: 5,
	}
	s, err := BuildSchedule(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r := &Runner{BaseURL: ts.URL, Client: ts.Client(),
		OnComplete: steadyWriter(db, dests, 40)}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		b.Fatal(err)
	}
	if res.Errors > 0 {
		b.Fatalf("%d transport errors", res.Errors)
	}
	return res
}

// BenchmarkLoadServing is the fleet x shards matrix: shards=1 with the
// cache off is the status-quo single instance, shards=4 the full tier.
func BenchmarkLoadServing(b *testing.B) {
	for _, bc := range []struct {
		fleet, shards, cache int
		suffix               string
	}{
		{4, 1, 0, ""},
		{16, 1, 0, ""},
		{64, 1, 0, ""},
		{16, 1, 512, "/cache=on"}, // decomposition: cache alone, no sharding
		{4, 4, 512, ""},
		{16, 4, 512, ""},
		{64, 4, 512, ""},
	} {
		name := fmt.Sprintf("fleet=%d/shards=%d/dist=zipf%s", bc.fleet, bc.shards, bc.suffix)
		b.Run(name, func(b *testing.B) {
			ts, dests, db := benchTier(b, cluster.Config{
				Shards: bc.shards, CacheEntries: bc.cache,
			})
			var last *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				last = runFleet(b, ts, db, dests, bc.fleet)
			}
			b.StopTimer()
			reportResult(b, last)
		})
	}
}

// rewriteChurn issues a catalogue-wide stats Update every n completed
// requests. Updates bump docdb's rewrite generation, so each one forces a
// full snapshot rebuild — the expensive background event (recovery,
// re-measurement import) that makes overload dangerous in the first
// place. The mutex serialises concurrent OnComplete callers; `last`
// guards against out-of-order completion counts re-firing an update.
func rewriteChurn(db *docdb.DB, dests []int, n int) func(int) {
	var mu sync.Mutex
	last := 0
	return func(completed int) {
		mu.Lock()
		defer mu.Unlock()
		if completed-last < n {
			return
		}
		last = completed
		db.Collection(measure.ColStats).Update(
			docdb.Eq(measure.FServerID, dests[0]),
			docdb.Document{"churn": completed})
	}
}

// BenchmarkLoadOverload drives the tier open-loop at ~2x its measured
// closed-loop capacity while catalogue rewrites churn in the background.
// The admission=off run is the unprotected baseline; with the gate on,
// excess arrivals shed as fast 503s (the unavailable_rate metric) and
// the p99 of served requests stays bounded instead of growing with the
// backlog. Cache off: every admitted request pays the full Select over
// 10^3 candidates, so arrivals beyond capacity genuinely queue.
func BenchmarkLoadOverload(b *testing.B) {
	const fleet = 32
	for _, bc := range []struct {
		suffix string
		cfg    cluster.Config
	}{
		{"/admission=off", cluster.Config{Shards: 4}},
		{"", cluster.Config{
			Shards:      4,
			MaxInflight: 2, QueueDepth: 4, QueueTimeout: 10 * time.Millisecond,
		}},
	} {
		b.Run(fmt.Sprintf("fleet=%d/shards=4/dist=zipf%s", fleet, bc.suffix), func(b *testing.B) {
			ts, dests, db := benchTier(b, bc.cfg)
			// Probe capacity closed-loop (churn-free), then arrive at twice
			// that rate.
			probe := runFleet(b, ts, db, dests, 16)
			rate := 2 * probe.RPS
			cfg := Config{
				Seed: 18, Mode: Open, Dist: Zipf, Clients: fleet, Requests: benchRequests,
				Destinations: dests, ArrivalRate: rate, Top: 5, Timeout: 2 * time.Second,
			}
			var last *Result
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := BuildSchedule(cfg)
				if err != nil {
					b.Fatal(err)
				}
				r := &Runner{BaseURL: ts.URL, Client: ts.Client(),
					OnComplete: rewriteChurn(db, dests, 60)}
				last, err = r.Run(context.Background(), s)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			reportResult(b, last)
			b.ReportMetric(rate, "arrival_rate")
			if bc.cfg.MaxInflight > 0 && last.Unavailable == 0 {
				b.Log("overload did not engage admission control (no 503s)")
			}
		})
	}
}

// BenchmarkLoadChaos runs the closed-loop fleet while the serving chaos
// plan rewrites and floods the database, and reports the recovery window.
func BenchmarkLoadChaos(b *testing.B) {
	b.Run("fleet=16/shards=4/dist=zipf", func(b *testing.B) {
		ts, dests, db := benchTier(b, cluster.Config{Shards: 4, CacheEntries: 512})
		cfg := Config{
			Seed: 19, Mode: Closed, Dist: Zipf, Clients: 16, Requests: benchRequests,
			Destinations: dests, ThinkMean: 200 * time.Microsecond, Top: 5,
		}
		plan := chaos.NewServingPlan(19, cfg.Requests)
		var last *Result
		var rep RecoveryReport
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s, err := BuildSchedule(cfg)
			if err != nil {
				b.Fatal(err)
			}
			driver := &ChaosDriver{DB: db, Plan: plan, Dests: dests}
			driver.Start()
			r := &Runner{BaseURL: ts.URL, Client: ts.Client(), OnComplete: driver.Notify}
			last, err = r.Run(context.Background(), s)
			if err != nil {
				b.Fatal(err)
			}
			rep = AnalyzeRecovery(last, driver.Firings())
		}
		b.StopTimer()
		reportResult(b, last)
		b.ReportMetric(ms(rep.BaselineP99), "baseline_p99_ms")
		b.ReportMetric(ms(rep.PeakP99), "peak_p99_ms")
		b.ReportMetric(float64(rep.DegradedBuckets), "degraded_buckets")
		recovered := 0.0
		if rep.Recovered {
			recovered = 1
		}
		b.ReportMetric(recovered, "recovered")
	})
}
