package load

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/chaos"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
	"github.com/upin/scionpath/internal/upin/cluster"
)

func closedCfg(dests []int) Config {
	return Config{
		Seed: 7, Mode: Closed, Clients: 4, Requests: 40,
		Destinations: dests, ThinkMean: time.Millisecond,
	}
}

// TestBuildScheduleDeterministic is the seed contract: same config, same
// schedule, deep-equal; a different seed diverges.
func TestBuildScheduleDeterministic(t *testing.T) {
	dests := []int{3, 1, 4, 1, 5, 9, 2, 6}
	for _, cfg := range []Config{
		closedCfg(dests),
		{Seed: 7, Mode: Open, Clients: 4, Requests: 40, Destinations: dests, ArrivalRate: 500},
	} {
		a, err := BuildSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("mode %s: same config produced different schedules", cfg.Mode)
		}
		cfg.Seed = 8
		c, err := BuildSchedule(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if reflect.DeepEqual(a.PerClient, c.PerClient) && reflect.DeepEqual(a.Arrivals, c.Arrivals) {
			t.Errorf("mode %s: different seeds produced identical schedules", cfg.Mode)
		}
	}
}

func TestBuildScheduleShape(t *testing.T) {
	dests := make([]int, 64)
	for i := range dests {
		dests[i] = i + 1
	}
	cfg := Config{Seed: 11, Mode: Closed, Clients: 8, Requests: 4000,
		Destinations: dests, IntentEvery: 10, ZipfS: 1.3}
	s, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total, intents := 0, 0
	byDest := map[int]int{}
	for _, steps := range s.PerClient {
		for _, st := range steps {
			total++
			if st.Intent {
				intents++
			}
			byDest[st.Dest]++
			if st.Think < 0 {
				t.Fatal("negative think time")
			}
		}
	}
	if total != cfg.Requests {
		t.Errorf("schedule holds %d steps, want %d", total, cfg.Requests)
	}
	if intents != cfg.Requests/cfg.IntentEvery {
		t.Errorf("%d intents, want %d", intents, cfg.Requests/cfg.IntentEvery)
	}
	// Zipf skew: the hottest destination takes far more than the uniform
	// share (4000/64 ≈ 62).
	hot := 0
	for _, n := range byDest {
		if n > hot {
			hot = n
		}
	}
	if hot < 3*cfg.Requests/64 {
		t.Errorf("hottest destination got %d requests — zipf skew missing", hot)
	}

	open := Config{Seed: 11, Mode: Open, Clients: 8, Requests: 500,
		Destinations: dests, ArrivalRate: 1000}
	so, err := BuildSchedule(open)
	if err != nil {
		t.Fatal(err)
	}
	if len(so.Arrivals) != open.Requests {
		t.Fatalf("%d arrivals, want %d", len(so.Arrivals), open.Requests)
	}
	for i := 1; i < len(so.Arrivals); i++ {
		if so.Arrivals[i].At < so.Arrivals[i-1].At {
			t.Fatal("arrivals not ordered by offset")
		}
	}
	// Mean interarrival tracks the configured rate (1ms) loosely.
	mean := so.Arrivals[len(so.Arrivals)-1].At / time.Duration(len(so.Arrivals))
	if mean < 500*time.Microsecond || mean > 2*time.Millisecond {
		t.Errorf("mean interarrival %v for rate 1000/s", mean)
	}
}

func TestBuildScheduleRejects(t *testing.T) {
	bad := []Config{
		{Mode: Closed, Clients: 0, Requests: 1, Destinations: []int{1}},
		{Mode: Closed, Clients: 1, Requests: 0, Destinations: []int{1}},
		{Mode: Closed, Clients: 1, Requests: 1},
		{Mode: Open, Clients: 1, Requests: 1, Destinations: []int{1}}, // no rate
		{Mode: "warp", Clients: 1, Requests: 1, Destinations: []int{1}},
		{Mode: Closed, Clients: 1, Requests: 1, Destinations: []int{1}, ZipfS: 0.5},
	}
	for i, cfg := range bad {
		if _, err := BuildSchedule(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// syntheticTier serves a SeedSynthetic world through a sharded tier over
// real HTTP.
func syntheticTier(t testing.TB, cfg cluster.Config) (*httptest.Server, []int, *docdb.DB) {
	t.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 5})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	db := docdb.MustOpen()
	dests, err := SeedSynthetic(db, topo, 6, 60, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	explorer := upin.NewDomainExplorer(topo, []addr.ISD{16, 17, 19})
	tier := cluster.New(db, daemon, net, explorer, topo, cfg)
	ts := httptest.NewServer(tier)
	t.Cleanup(ts.Close)
	return ts, dests, db
}

func TestSeedSyntheticDeterministic(t *testing.T) {
	topo := topology.DefaultWorld()
	a, b := docdb.MustOpen(), docdb.MustOpen()
	destsA, err := SeedSynthetic(a, topo, 3, 10, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	destsB, err := SeedSynthetic(b, topo, 3, 10, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(destsA, destsB) {
		t.Fatalf("destination ids diverged: %v vs %v", destsA, destsB)
	}
	for _, col := range []string{measure.ColPaths, measure.ColStats} {
		da, db2 := a.Collection(col).Count(), b.Collection(col).Count()
		if da != db2 || da == 0 {
			t.Errorf("%s: %d vs %d documents", col, da, db2)
		}
	}
	docA := a.Collection(measure.ColPaths).FindOne(docdb.Query{Filter: docdb.Eq("_id", measure.PathID(destsA[0], 0))})
	docB := b.Collection(measure.ColPaths).FindOne(docdb.Query{Filter: docdb.Eq("_id", measure.PathID(destsB[0], 0))})
	if docA == nil || docB == nil || !reflect.DeepEqual(docA, docB) {
		t.Errorf("seeded documents diverged: %v vs %v", docA, docB)
	}
}

// TestRunnerClosedLoop drives a real fleet over HTTP: every scheduled
// request completes with 200 and the percentiles are populated.
func TestRunnerClosedLoop(t *testing.T) {
	ts, dests, _ := syntheticTier(t, cluster.Config{Shards: 2, CacheEntries: 256})
	cfg := Config{Seed: 21, Mode: Closed, Clients: 4, Requests: 60,
		Destinations: dests, ThinkMean: 500 * time.Microsecond, Top: 5}
	s, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{BaseURL: ts.URL, Client: ts.Client()}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d", res.Completed, cfg.Requests)
	}
	if res.Statuses[http.StatusOK] != cfg.Requests {
		t.Fatalf("statuses: %v", res.Statuses)
	}
	if res.Errors != 0 || res.Unavailable != 0 {
		t.Errorf("errors=%d unavailable=%d", res.Errors, res.Unavailable)
	}
	if res.RPS <= 0 || res.P50 <= 0 || res.P99 < res.P50 || res.Max < res.P99 {
		t.Errorf("degenerate percentiles: rps=%v p50=%v p99=%v max=%v",
			res.RPS, res.P50, res.P99, res.Max)
	}
	if len(res.Buckets) != bucketCount {
		t.Errorf("%d buckets", len(res.Buckets))
	}
}

// TestRunnerOpenLoopChaos: the open-loop fleet keeps arriving while the
// chaos driver rewrites and floods the database; all events fire, the
// writes land, and the recovery analysis produces a baseline.
func TestRunnerOpenLoopChaos(t *testing.T) {
	ts, dests, db := syntheticTier(t, cluster.Config{Shards: 2, CacheEntries: 256})
	cfg := Config{Seed: 22, Mode: Open, Clients: 6, Requests: 120,
		Destinations: dests, ArrivalRate: 2000, Top: 5}
	s, err := BuildSchedule(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plan := chaos.NewServingPlan(22, cfg.Requests)
	if len(plan.Events) == 0 {
		t.Fatal("empty serving plan")
	}
	driver := &ChaosDriver{DB: db, Plan: plan, Dests: dests}
	statsBefore := db.Collection(measure.ColStats).Count()
	rewriteGenBefore := db.Collection(measure.ColStats).RewriteGeneration()

	driver.Start()
	r := &Runner{BaseURL: ts.URL, Client: ts.Client(), OnComplete: driver.Notify}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != cfg.Requests {
		t.Fatalf("completed %d of %d", res.Completed, cfg.Requests)
	}
	firings := driver.Firings()
	if len(firings) != len(plan.Events) {
		t.Fatalf("fired %d of %d events", len(firings), len(plan.Events))
	}
	wantBurst := 0
	sawRewrite := false
	for _, f := range firings {
		if f.Event.Kind == chaos.WriteBurst {
			wantBurst += f.Event.Docs
		} else {
			sawRewrite = true
		}
	}
	if got := db.Collection(measure.ColStats).Count() - statsBefore; got != wantBurst {
		t.Errorf("burst wrote %d docs, plan says %d", got, wantBurst)
	}
	if sawRewrite && db.Collection(measure.ColStats).RewriteGeneration() == rewriteGenBefore {
		t.Error("rewrite storm did not bump RewriteGeneration")
	}
	// Traffic kept succeeding through the chaos.
	if res.Statuses[http.StatusOK] != cfg.Requests {
		t.Errorf("statuses: %v", res.Statuses)
	}
	rep := AnalyzeRecovery(res, firings)
	if rep.BaselineP99 <= 0 {
		t.Errorf("recovery analysis found no baseline: %+v", rep)
	}
}

// TestServingPlanDeterministic pins the chaos side of the seed contract.
func TestServingPlanDeterministic(t *testing.T) {
	a := chaos.NewServingPlan(33, 1000)
	b := chaos.NewServingPlan(33, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different serving plans")
	}
	if len(a.Events) < 2 {
		t.Fatalf("plan too small: %+v", a)
	}
	for i, ev := range a.Events {
		if ev.AfterRequests < 200 || ev.AfterRequests > 800 {
			t.Errorf("event %d trigger %d outside the 20%%..80%% window", i, ev.AfterRequests)
		}
		if i > 0 && ev.AfterRequests < a.Events[i-1].AfterRequests {
			t.Error("events not ordered by trigger")
		}
	}
	if c := chaos.NewServingPlan(33, 5); len(c.Events) != 0 {
		t.Error("tiny streams must get no events")
	}
}
