package load

import (
	"context"
	"fmt"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Result is one run's measurement.
type Result struct {
	Mode     Mode          `json:"mode"`
	Clients  int           `json:"clients"`
	Requests int           `json:"requests"`
	Duration time.Duration `json:"duration"`

	Completed   int         `json:"completed"`
	Errors      int         `json:"errors"` // transport failures + deadline misses
	Unavailable int         `json:"unavailable"`
	RateLimited int         `json:"rate_limited"`
	Statuses    map[int]int `json:"statuses"`

	RPS  float64       `json:"rps"`
	P50  time.Duration `json:"p50"`
	P90  time.Duration `json:"p90"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	Max  time.Duration `json:"max"`

	Buckets []Bucket `json:"buckets"`
}

// Bucket is one time slice of the run (Result.Duration / bucketCount):
// the latency series the chaos analysis reads.
type Bucket struct {
	Start  time.Duration `json:"start"`
	Count  int           `json:"count"`
	Errors int           `json:"errors"`
	P99    time.Duration `json:"p99"`
}

const bucketCount = 20

// sample is one finished request. off is the latency-measurement origin's
// offset from run start: the send time in closed mode, the scheduled
// arrival in open mode.
type sample struct {
	off    time.Duration
	lat    time.Duration
	status int // 0 = transport error
}

// Runner drives one Schedule against a serving tier over real HTTP.
type Runner struct {
	// BaseURL is the tier's root, e.g. the httptest.Server URL.
	BaseURL string
	// Client is the shared HTTP client; connections are reused across the
	// whole fleet. Defaults to http.DefaultClient.
	Client *http.Client
	// OnComplete, when set, observes the completed-request count after
	// every response; the chaos driver hangs off this hook. Called
	// concurrently from fleet goroutines.
	OnComplete func(completed int)

	completed atomic.Int64

	mu      sync.Mutex
	samples []sample // guarded by mu
}

// Run executes the schedule and blocks until the fleet finishes (or ctx
// cancels, in which case the partial result is still computed).
func (r *Runner) Run(ctx context.Context, s *Schedule) (*Result, error) {
	if r.Client == nil {
		r.Client = http.DefaultClient
	}
	r.mu.Lock()
	r.samples = make([]sample, 0, s.Cfg.Requests)
	r.mu.Unlock()
	r.completed.Store(0)
	start := time.Now()

	var wg sync.WaitGroup
	switch s.Cfg.Mode {
	case Closed:
		for c, steps := range s.PerClient {
			wg.Add(1)
			go func(client int, steps []Step) {
				defer wg.Done()
				r.runClient(ctx, s, client, steps, start)
			}(c, steps)
		}
	case Open:
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.dispatch(ctx, s, start)
		}()
	default:
		return nil, fmt.Errorf("load: unknown mode %q", s.Cfg.Mode)
	}
	wg.Wait()
	return r.result(s, time.Since(start)), nil
}

// runClient is one closed-loop client: request, record, think, repeat.
func (r *Runner) runClient(ctx context.Context, s *Schedule, client int, steps []Step, start time.Time) {
	for _, st := range steps {
		if ctx.Err() != nil {
			return
		}
		sent := time.Now()
		status := r.fire(ctx, s, client, st.Dest, st.Intent)
		r.record(sample{off: sent.Sub(start), lat: time.Since(sent), status: status})
		if st.Think > 0 {
			t := time.NewTimer(st.Think)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return
			}
		}
	}
}

// dispatch fires open-loop arrivals at their scheduled offsets. Latency
// is measured from the *scheduled* arrival: if the server (or the local
// scheduler) falls behind, the queueing delay lands in the recorded
// latency instead of silently stretching the run.
func (r *Runner) dispatch(ctx context.Context, s *Schedule, start time.Time) {
	var wg sync.WaitGroup
	for _, a := range s.Arrivals {
		if ctx.Err() != nil {
			break
		}
		if d := time.Until(start.Add(a.At)); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		wg.Add(1)
		go func(a Arrival) {
			defer wg.Done()
			scheduled := start.Add(a.At)
			status := r.fire(ctx, s, a.Client, a.Dest, a.Intent)
			r.record(sample{off: a.At, lat: time.Since(scheduled), status: status})
		}(a)
	}
	wg.Wait()
}

// fire issues one request and returns the HTTP status (0 on transport
// error or deadline miss).
func (r *Runner) fire(ctx context.Context, s *Schedule, client, dest int, intent bool) int {
	ctx, cancel := context.WithTimeout(ctx, s.Cfg.Timeout)
	defer cancel()
	var req *http.Request
	var err error
	if intent {
		body := fmt.Sprintf(`{"server_id":%d,"objective":"latency"}`, dest)
		req, err = http.NewRequestWithContext(ctx, http.MethodPost,
			r.BaseURL+"/api/intent", strings.NewReader(body))
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	} else {
		url := fmt.Sprintf("%s/api/paths?server=%d", r.BaseURL, dest)
		if s.Cfg.Top > 0 {
			url += fmt.Sprintf("&top=%d", s.Cfg.Top)
		}
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	}
	if err != nil {
		return 0
	}
	req.Header.Set("X-Client-ID", fmt.Sprintf("c%03d", client))
	resp, err := r.Client.Do(req)
	if err != nil {
		return 0
	}
	// Drain so the keep-alive connection is reusable.
	_, _ = discard(resp)
	return resp.StatusCode
}

func (r *Runner) record(smp sample) {
	r.mu.Lock()
	r.samples = append(r.samples, smp)
	r.mu.Unlock()
	n := r.completed.Add(1)
	if r.OnComplete != nil {
		r.OnComplete(int(n))
	}
}

// result folds the samples into percentiles and the bucket series.
func (r *Runner) result(s *Schedule, elapsed time.Duration) *Result {
	r.mu.Lock()
	samples := r.samples
	r.mu.Unlock()

	res := &Result{
		Mode: s.Cfg.Mode, Clients: s.Cfg.Clients, Requests: s.Cfg.Requests,
		Duration: elapsed, Completed: len(samples), Statuses: map[int]int{},
	}
	if len(samples) == 0 {
		return res
	}
	lats := make([]time.Duration, 0, len(samples))
	for _, smp := range samples {
		res.Statuses[smp.status]++
		switch smp.status {
		case 0:
			res.Errors++
			continue // no latency: the request never completed
		case http.StatusServiceUnavailable:
			res.Unavailable++
		case http.StatusTooManyRequests:
			res.RateLimited++
		}
		lats = append(lats, smp.lat)
	}
	if elapsed > 0 {
		res.RPS = float64(len(samples)) / elapsed.Seconds()
	}
	if len(lats) > 0 {
		slices.Sort(lats)
		res.P50 = percentile(lats, 0.50)
		res.P90 = percentile(lats, 0.90)
		res.P99 = percentile(lats, 0.99)
		res.P999 = percentile(lats, 0.999)
		res.Max = lats[len(lats)-1]
	}
	res.Buckets = bucketize(samples, elapsed)
	return res
}

// percentile reads the p-quantile of an ascending latency slice
// (nearest-rank).
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func bucketize(samples []sample, elapsed time.Duration) []Bucket {
	if elapsed <= 0 {
		return nil
	}
	width := elapsed / bucketCount
	if width <= 0 {
		width = time.Millisecond
	}
	lats := make([][]time.Duration, bucketCount)
	out := make([]Bucket, bucketCount)
	for i := range out {
		out[i].Start = time.Duration(i) * width
	}
	for _, smp := range samples {
		i := int(smp.off / width)
		if i < 0 {
			i = 0
		}
		if i >= bucketCount {
			i = bucketCount - 1
		}
		out[i].Count++
		if smp.status == 0 {
			out[i].Errors++
			continue
		}
		lats[i] = append(lats[i], smp.lat)
	}
	for i := range out {
		slices.Sort(lats[i])
		out[i].P99 = percentile(lats[i], 0.99)
	}
	return out
}

func discard(resp *http.Response) (int64, error) {
	defer resp.Body.Close()
	var buf [4096]byte
	var n int64
	for {
		m, err := resp.Body.Read(buf[:])
		n += int64(m)
		if err != nil {
			return n, nil
		}
	}
}
