package load

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/topology"
)

// SeedSynthetic fills a database with a synthetic measurement campaign
// over the given topology: nDests destinations, pathsPer candidate paths
// each (sequences walk real ASes of the topology, so geo annotation and
// hop metadata work), statsPer stats documents per path. It returns the
// seeded destination ids. This is the 10³-candidate regime generated
// worlds reach, which a real SCIONLab campaign never produces — the load
// benchmarks run against it so per-request work is production-shaped.
//
//lint:deterministic synthetic campaigns must be reproducible from the seed
func SeedSynthetic(db *docdb.DB, topo *topology.Topology, nDests, pathsPer, statsPer int, seed int64) ([]int, error) {
	if err := measure.SeedServers(db, topo); err != nil {
		return nil, err
	}
	srvs, err := measure.Servers(db)
	if err != nil {
		return nil, err
	}
	if len(srvs) < nDests {
		return nil, fmt.Errorf("load: topology offers %d servers, need %d", len(srvs), nDests)
	}
	rng := rand.New(rand.NewSource(seed))
	ases := topo.ASes()
	dests := make([]int, 0, nDests)
	pathDocs := make([]docdb.Document, 0, nDests*pathsPer)
	statsDocs := make([]docdb.Document, 0, nDests*pathsPer*statsPer)
	nowMs := int64(1_700_000_000_000)
	for d := 0; d < nDests; d++ {
		sid, dst := srvs[d].ID, srvs[d].Address.IA
		dests = append(dests, sid)
		for i := 0; i < pathsPer; i++ {
			hops := 3 + rng.Intn(4)
			parts := make([]string, 0, hops+1)
			isds := make([]any, 0, hops+1)
			addISD := func(isd string) {
				for _, have := range isds {
					if have == isd {
						return
					}
				}
				isds = append(isds, isd)
			}
			for h := 0; h < hops; h++ {
				ia := ases[rng.Intn(len(ases))].IA
				parts = append(parts, ia.String())
				addISD(fmt.Sprintf("%d", ia.ISD))
			}
			parts = append(parts, dst.String())
			addISD(fmt.Sprintf("%d", dst.ISD))
			id := measure.PathID(sid, i)
			pathDocs = append(pathDocs, docdb.Document{
				"_id":              id,
				measure.FServerID:  sid,
				measure.FPathIndex: i,
				measure.FHops:      hops + 1,
				measure.FSequence:  strings.Join(parts, " "),
				measure.FISDs:      isds,
				measure.FMTU:       1472,
			})
			for s := 0; s < statsPer; s++ {
				nowMs += int64(rng.Intn(3))
				statsDocs = append(statsDocs, docdb.Document{
					"_id":               fmt.Sprintf("%s@%d#%d", id, nowMs, s),
					measure.FPathID:     id,
					measure.FServerID:   sid,
					measure.FTimestamp:  nowMs,
					measure.FLoss:       float64(rng.Intn(200)) / 10,
					measure.FAvgLatency: 10 + rng.Float64()*150,
					measure.FMdev:       rng.Float64() * 5,
					measure.FBwUpMTU:    1e6 + rng.Float64()*1e8,
					measure.FBwDownMTU:  1e6 + rng.Float64()*1e8,
				})
			}
		}
	}
	if err := db.Collection(measure.ColPaths).InsertMany(pathDocs); err != nil {
		return nil, err
	}
	if err := db.Collection(measure.ColStats).InsertMany(statsDocs); err != nil {
		return nil, err
	}
	return dests, nil
}
