package pathmgr

import (
	"fmt"
	"sync"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

// segMeta is a segment with everything combination needs precomputed once:
// the packet-direction hop lists and suffix aggregates of link MTU and
// propagation latency. Suffix i covers the links connecting entries
// i..n-1, so splicing a segment at entry i prices the spliced tail in O(1)
// instead of re-walking links for every candidate path.
type segMeta struct {
	seg *segment.Segment
	// hopsDown is the beacon-direction hop list (core->leaf for down
	// segments, origin->terminal for core segments).
	hopsDown []Hop
	// hopsUp is the reversed hop list (leaf->core), built for leaf
	// segments only. Reversal commutes with suffix slicing:
	// upHops(Entries[i:]) == hopsUp[:n-i] for any i.
	hopsUp []Hop
	// sufMTU[i] is the minimum link MTU over entries i..n-1 (0 when the
	// suffix spans no link); sufLat[i] is the summed propagation delay.
	// Like the Path annotations they precompute, both are derived from
	// topo.LinkBetween per adjacent entry pair, not from the beacon's
	// recorded MTUs.
	sufMTU []int
	sufLat []time.Duration
	// lastBad is the largest entry index whose link to entry index+1 is
	// missing from the topology, or -1: suffix i is usable iff lastBad < i.
	// err records the first missing link in entry order.
	lastBad int
	err     error
}

// linkInfo is the cached per-AS-pair link annotation.
type linkInfo struct {
	mtu int
	lat time.Duration
	ok  bool
}

// metaStore lazily builds and caches segMetas per leaf AS and per ordered
// core pair, only for the ASes combination actually touches (eager
// construction would make building a combiner scale with the registry, not
// with the queried pairs). It is deliberately a separate type from
// Combiner: a published Combiner is a frozen snapshot, while the store
// keeps mutating under its own lock.
type metaStore struct {
	topo *topology.Topology
	reg  *segment.Registry

	// mu guards leaf, core and links. Held only on combination-cache
	// misses, and never while computing paths.
	mu    sync.Mutex
	leaf  map[addr.IA][]*segMeta
	core  map[pairKey][]*segMeta
	links map[pairKey]linkInfo
}

func newMetaStore(topo *topology.Topology, reg *segment.Registry) *metaStore {
	return &metaStore{
		topo:  topo,
		reg:   reg,
		leaf:  make(map[addr.IA][]*segMeta),
		core:  make(map[pairKey][]*segMeta),
		links: make(map[pairKey]linkInfo),
	}
}

// leafMetas returns the metas of ia's down segments (used reversed as its
// up segments), building them on first use.
func (s *metaStore) leafMetas(ia addr.IA) []*segMeta {
	s.mu.Lock()
	defer s.mu.Unlock()
	if metas, ok := s.leaf[ia]; ok {
		return metas
	}
	segs := s.reg.DownSegments(ia)
	metas := make([]*segMeta, len(segs))
	for i, sg := range segs {
		metas[i] = s.buildLocked(sg, true)
	}
	s.leaf[ia] = metas
	return metas
}

// corePair returns the metas of the core segments from src to dst core AS,
// building them on first use.
func (s *metaStore) corePair(src, dst addr.IA) []*segMeta {
	key := pairKey{src, dst}
	s.mu.Lock()
	defer s.mu.Unlock()
	if metas, ok := s.core[key]; ok {
		return metas
	}
	segs := s.reg.CoreSegments(src, dst)
	metas := make([]*segMeta, len(segs))
	for i, sg := range segs {
		metas[i] = s.buildLocked(sg, false)
	}
	s.core[key] = metas
	return metas
}

func (s *metaStore) buildLocked(sg *segment.Segment, withUp bool) *segMeta {
	ents := sg.Entries
	n := len(ents)
	m := &segMeta{
		seg:      sg,
		hopsDown: downHops(sg),
		sufMTU:   make([]int, n),
		sufLat:   make([]time.Duration, n),
		lastBad:  -1,
	}
	if withUp {
		m.hopsUp = upHops(sg)
	}
	for i := n - 2; i >= 0; i-- {
		li := s.linkLocked(ents[i].IA, ents[i+1].IA)
		if !li.ok {
			if m.lastBad < 0 {
				m.lastBad = i // scanning backwards: first hit is the largest
			}
			m.err = fmt.Errorf("pathmgr: path hop %s--%s has no link", ents[i].IA, ents[i+1].IA)
			m.sufMTU[i], m.sufLat[i] = m.sufMTU[i+1], m.sufLat[i+1]
			continue
		}
		m.sufMTU[i] = mergeMTU(m.sufMTU[i+1], li.mtu)
		m.sufLat[i] = m.sufLat[i+1] + li.lat
	}
	return m
}

// linkLocked annotates the AS pair the way Path.annotate does — first link
// between the pair, geographic propagation delay — memoised because tree
// links recur across many segments. LinkBetween and PropagationDelay are
// both symmetric, so the reverse direction is cached too.
func (s *metaStore) linkLocked(a, b addr.IA) linkInfo {
	key := pairKey{a, b}
	if li, ok := s.links[key]; ok {
		return li
	}
	var li linkInfo
	if l := s.topo.LinkBetween(a, b); l != nil {
		asA, asB := s.topo.AS(a), s.topo.AS(b)
		li = linkInfo{
			mtu: l.MTU,
			lat: geo.PropagationDelay(asA.Site.Coords, asB.Site.Coords),
			ok:  true,
		}
	}
	s.links[key] = li
	s.links[pairKey{b, a}] = li
	return li
}

// mergeMTU combines two MTU aggregates where 0 means "no links yet".
func mergeMTU(a, b int) int {
	if a == 0 {
		return b
	}
	if b == 0 {
		return a
	}
	if b < a {
		return b
	}
	return a
}
