// Package pathmgr turns registered path segments into end-to-end SCION
// paths and provides the path metadata and hop-predicate machinery the
// scion tools expose (showpaths --extended, ping --sequence, ...).
package pathmgr

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
	"github.com/upin/scionpath/internal/topology"
)

// Hop is one AS traversed by a path with the ingress/egress interfaces used.
// In is 0 at the source AS, Out is 0 at the destination AS.
type Hop struct {
	IA  addr.IA
	In  addr.IfID
	Out addr.IfID
}

// String renders the hop in showpaths notation "IA#in,out" (source and
// destination render the single relevant interface).
func (h Hop) String() string {
	switch {
	case h.In == 0:
		return fmt.Sprintf("%s#%d", h.IA, h.Out)
	case h.Out == 0:
		return fmt.Sprintf("%s#%d", h.IA, h.In)
	default:
		return fmt.Sprintf("%s#%d,%d", h.IA, h.In, h.Out)
	}
}

// Path is an end-to-end SCION path from Src to Dst.
type Path struct {
	Src, Dst addr.IA
	Hops     []Hop
	// MTU is the minimum MTU over all links of the path.
	MTU int
	// Expiry is when the underlying segments expire (informational).
	Expiry time.Time
	// MinLatency is the static latency estimate showpaths --extended
	// prints: the one-way geographic propagation lower bound.
	MinLatency time.Duration
	// Status is the probed liveness ("alive", "timeout", ...).
	Status string
}

// NumHops returns the number of ASes the path traverses, the "Hops" count
// the scion tools report and the paper's selection criterion (§5.2).
func (p *Path) NumHops() int { return len(p.Hops) }

// ISDSet returns the sorted set of ISDs the path traverses. The paper
// stores this with every measurement and groups Fig 6 by it.
func (p *Path) ISDSet() []addr.ISD {
	seen := map[addr.ISD]bool{}
	for _, h := range p.Hops {
		seen[h.IA.ISD] = true
	}
	out := make([]addr.ISD, 0, len(seen))
	for isd := range seen {
		out = append(out, isd)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ISDSetKey renders the ISD set canonically, e.g. "16-17".
func (p *Path) ISDSetKey() string {
	isds := p.ISDSet()
	parts := make([]string, len(isds))
	for i, isd := range isds {
		parts[i] = fmt.Sprintf("%d", isd)
	}
	return strings.Join(parts, "-")
}

// Contains reports whether the path traverses the given AS.
func (p *Path) Contains(ia addr.IA) bool {
	for _, h := range p.Hops {
		if h.IA == ia {
			return true
		}
	}
	return false
}

// HasLoop reports whether any AS repeats.
func (p *Path) HasLoop() bool {
	seen := make(map[addr.IA]bool, len(p.Hops))
	for _, h := range p.Hops {
		if seen[h.IA] {
			return true
		}
		seen[h.IA] = true
	}
	return false
}

// Sequence renders the full hop-predicate sequence of the path, the string
// passed to `scion ping --sequence '...'` to pin the route (§5.3).
func (p *Path) Sequence() string {
	parts := make([]string, len(p.Hops))
	for i, h := range p.Hops {
		parts[i] = h.String()
	}
	return strings.Join(parts, " ")
}

// Fingerprint returns a short stable identifier derived from the hop
// sequence, as the scion tools print.
func (p *Path) Fingerprint() string {
	sum := sha256.Sum256([]byte(p.Sequence()))
	return hex.EncodeToString(sum[:8])
}

// String renders the path like showpaths: "Hops: [A 1>2 B 3>4 C] MTU: n".
func (p *Path) String() string {
	var b strings.Builder
	b.WriteString("[")
	for i, h := range p.Hops {
		if i > 0 {
			fmt.Fprintf(&b, " %d>%d ", p.Hops[i-1].Out, h.In)
		}
		b.WriteString(h.IA.String())
	}
	fmt.Fprintf(&b, "] MTU: %d Hops: %d", p.MTU, p.NumHops())
	return b.String()
}

// Expired reports whether the path's segments have expired at simulated
// time now (durations measure time since the simulation epoch).
func (p *Path) Expired(now time.Duration) bool {
	return !p.Expiry.IsZero() && time.Unix(0, 0).Add(now).After(p.Expiry)
}

// annotate fills the derived fields (MTU, MinLatency) from the topology.
func (p *Path) annotate(topo *topology.Topology) error {
	mtu := 0
	var lat time.Duration
	for i := 0; i+1 < len(p.Hops); i++ {
		a, b := p.Hops[i].IA, p.Hops[i+1].IA
		l := topo.LinkBetween(a, b)
		if l == nil {
			return fmt.Errorf("pathmgr: path hop %s--%s has no link", a, b)
		}
		if mtu == 0 || l.MTU < mtu {
			mtu = l.MTU
		}
		asA, asB := topo.AS(a), topo.AS(b)
		lat += geo.PropagationDelay(asA.Site.Coords, asB.Site.Coords)
	}
	p.MTU = mtu
	p.MinLatency = lat
	p.Status = "alive"
	return nil
}
