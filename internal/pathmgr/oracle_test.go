package pathmgr

// The original combiner — candidate enumeration, HasLoop filtering,
// annotate-per-candidate, fingerprint-map dedup and (hops, fingerprint)
// sort — kept verbatim as a test-local oracle. The indexed/cached combiner
// must return reflect.DeepEqual results on every topology and pair,
// including when served from the combination cache and across
// invalidations.

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

func naivePaths(topo *topology.Topology, reg *segment.Registry, src, dst addr.IA) ([]*Path, error) {
	if src == dst {
		return nil, fmt.Errorf("pathmgr: src and dst are both %s", src)
	}
	srcAS, dstAS := topo.AS(src), topo.AS(dst)
	if srcAS == nil {
		return nil, fmt.Errorf("pathmgr: unknown source AS %s", src)
	}
	if dstAS == nil {
		return nil, fmt.Errorf("pathmgr: unknown destination AS %s", dst)
	}
	srcCore := srcAS.Type == topology.Core
	dstCore := dstAS.Type == topology.Core

	var candidates [][]Hop
	switch {
	case srcCore && dstCore:
		for _, s := range reg.CoreSegments(src, dst) {
			candidates = append(candidates, downHops(s))
		}
	case srcCore && !dstCore:
		for _, d := range reg.DownSegments(dst) {
			if d.First() == src {
				candidates = append(candidates, downHops(d))
				continue
			}
			for _, s := range reg.CoreSegments(src, d.First()) {
				candidates = append(candidates, joinHops(downHops(s), downHops(d)))
			}
		}
	case !srcCore && dstCore:
		for _, u := range reg.UpSegments(src) {
			if u.First() == dst {
				candidates = append(candidates, upHops(u))
				continue
			}
			for _, s := range reg.CoreSegments(u.First(), dst) {
				candidates = append(candidates, joinHops(upHops(u), downHops(s)))
			}
		}
	default:
		for _, u := range reg.UpSegments(src) {
			for _, d := range reg.DownSegments(dst) {
				if u.First() == d.First() {
					if hops, ok := naiveSplice(u, d); ok {
						candidates = append(candidates, hops)
					}
					continue
				}
				for _, s := range reg.CoreSegments(u.First(), d.First()) {
					candidates = append(candidates, joinHops(joinHops(upHops(u), downHops(s)), downHops(d)))
				}
			}
		}
	}

	seen := map[string]bool{}
	var out []*Path
	for _, hops := range candidates {
		p := &Path{Src: src, Dst: dst, Hops: hops}
		if p.HasLoop() {
			continue
		}
		if err := p.annotate(topo); err != nil {
			return nil, err
		}
		fp := p.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NumHops() != out[j].NumHops() {
			return out[i].NumHops() < out[j].NumHops()
		}
		return out[i].Fingerprint() < out[j].Fingerprint()
	})
	return out, nil
}

func naiveSplice(u, d *segment.Segment) ([]Hop, bool) {
	uIdx := make(map[addr.IA]int, len(u.Entries))
	for i, e := range u.Entries {
		uIdx[e.IA] = i
	}
	spliceJ := -1
	for j := len(d.Entries) - 1; j >= 0; j-- {
		if _, ok := uIdx[d.Entries[j].IA]; ok {
			spliceJ = j
			break
		}
	}
	if spliceJ < 0 {
		return nil, false
	}
	i := uIdx[d.Entries[spliceJ].IA]
	up := upHops(&segment.Segment{Type: segment.Up, Entries: u.Entries[i:]})
	down := downHops(&segment.Segment{Type: segment.Down, Entries: d.Entries[spliceJ:]})
	return joinHops(up, down), true
}

func naiveMinHops(topo *topology.Topology, reg *segment.Registry, src, dst addr.IA) (int, bool) {
	paths, err := naivePaths(topo, reg, src, dst)
	if err != nil || len(paths) == 0 {
		return 0, false
	}
	return paths[0].NumHops(), true
}

// TestPathsMatchNaiveOracle sweeps seeded topologies and random pairs: the
// indexed combiner, fresh or cache-served, before and after Invalidate,
// must reproduce the naive combiner bit for bit.
func TestPathsMatchNaiveOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	worlds := []*topology.Topology{topology.DefaultWorld()}
	for i := 0; i < 6; i++ {
		worlds = append(worlds, randomWorld(t, rng, 2+rng.Intn(4), 6))
	}
	for wi, topo := range worlds {
		reg := segment.Discover(topo, segment.Options{})
		c := NewCombiner(topo, reg)
		all := topo.ASes()
		for trial := 0; trial < 12; trial++ {
			src := all[rng.Intn(len(all))].IA
			dst := all[rng.Intn(len(all))].IA
			if src == dst {
				continue
			}
			want, wantErr := naivePaths(topo, reg, src, dst)
			got, err := c.Paths(src, dst)
			if (err != nil) != (wantErr != nil) {
				t.Fatalf("world %d %s->%s: err %v, naive err %v", wi, src, dst, err, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("world %d %s->%s: paths diverge from naive combiner", wi, src, dst)
			}
			// Second query is served from the combination cache.
			cached, err := c.Paths(src, dst)
			if err != nil || !reflect.DeepEqual(cached, want) {
				t.Fatalf("world %d %s->%s: cached paths diverge (err %v)", wi, src, dst, err)
			}
			// And again after discarding the cache generation.
			gen := c.Generation()
			c.Invalidate()
			if c.Generation() != gen+1 {
				t.Fatalf("world %d: generation %d after invalidating %d", wi, c.Generation(), gen)
			}
			fresh, err := c.Paths(src, dst)
			if err != nil || !reflect.DeepEqual(fresh, want) {
				t.Fatalf("world %d %s->%s: post-invalidate paths diverge (err %v)", wi, src, dst, err)
			}
		}
	}
}

// TestPathsCacheIsolation: callers own the returned Path structs — stamping
// expiry or probe status on them must not leak into later answers.
func TestPathsCacheIsolation(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := NewCombiner(topo, reg)
	first, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil || len(first) == 0 {
		t.Fatalf("paths: %v (%d paths)", err, len(first))
	}
	first[0].Status = "timeout"
	first[0].Expiry = time.Unix(1, 0)
	again, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	if again[0].Status != "alive" || !again[0].Expiry.IsZero() {
		t.Fatalf("caller mutation leaked into cache: status %q expiry %v", again[0].Status, again[0].Expiry)
	}
}

// TestPathsConcurrentWithInvalidate hammers one combiner from concurrent
// readers while another goroutine keeps invalidating; run under -race this
// checks the single-flight fill and snapshot swap, and every answer must
// still equal the naive oracle.
func TestPathsConcurrentWithInvalidate(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := NewCombiner(topo, reg)

	type pair struct{ src, dst addr.IA }
	all := topo.ASes()
	var pairs []pair
	want := make(map[pair][]*Path)
	rng := rand.New(rand.NewSource(5))
	for len(pairs) < 10 {
		src := all[rng.Intn(len(all))].IA
		dst := all[rng.Intn(len(all))].IA
		if src == dst {
			continue
		}
		pr := pair{src, dst}
		if _, dup := want[pr]; dup {
			continue
		}
		w, err := naivePaths(topo, reg, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pr)
		want[pr] = w
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 60; iter++ {
				pr := pairs[(g+iter)%len(pairs)]
				got, err := c.Paths(pr.src, pr.dst)
				if err != nil {
					t.Errorf("paths %s->%s: %v", pr.src, pr.dst, err)
					return
				}
				if !reflect.DeepEqual(got, want[pr]) {
					t.Errorf("paths %s->%s diverge under concurrency", pr.src, pr.dst)
					return
				}
				if len(got) > 0 {
					got[0].Status = "timeout" // caller-owned, must not leak
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			c.Invalidate()
		}
	}()
	wg.Wait()
	if c.Generation() != 25 {
		t.Fatalf("generation %d after 25 invalidations", c.Generation())
	}
}

// TestMinHopsMatchesFullComputation is the satellite check for the cheap
// MinHops: across a categorized table and exhaustive DefaultWorld sweeps it
// must agree with materialising, annotating and sorting all paths.
func TestMinHopsMatchesFullComputation(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := NewCombiner(topo, reg)
	all := topo.ASes()

	var firstCore, secondCore, leafA, leafB addr.IA
	for _, as := range all {
		switch {
		case as.Type == topology.Core && firstCore == (addr.IA{}):
			firstCore = as.IA
		case as.Type == topology.Core && secondCore == (addr.IA{}):
			secondCore = as.IA
		case as.Type != topology.Core && leafA == (addr.IA{}):
			leafA = as.IA
		case as.Type != topology.Core && leafB == (addr.IA{}):
			leafB = as.IA
		}
	}
	table := []struct {
		name     string
		src, dst addr.IA
	}{
		{"core-core", firstCore, secondCore},
		{"core-leaf", firstCore, leafB},
		{"leaf-core", leafA, secondCore},
		{"leaf-leaf", leafA, leafB},
		{"same AS", leafA, leafA},
		{"unknown dst", leafA, addr.MustParseIA("99-ff00:0:1")},
		{"unknown src", addr.MustParseIA("99-ff00:0:1"), leafA},
	}
	for _, tc := range table {
		gotN, gotOK := c.MinHops(tc.src, tc.dst)
		wantN, wantOK := naiveMinHops(topo, reg, tc.src, tc.dst)
		if gotN != wantN || gotOK != wantOK {
			t.Errorf("%s: MinHops(%s,%s) = (%d,%v), full computation (%d,%v)",
				tc.name, tc.src, tc.dst, gotN, gotOK, wantN, wantOK)
		}
	}

	// Exhaustive sweep over every ordered DefaultWorld pair.
	for _, src := range all {
		for _, dst := range all {
			gotN, gotOK := c.MinHops(src.IA, dst.IA)
			wantN, wantOK := naiveMinHops(topo, reg, src.IA, dst.IA)
			if gotN != wantN || gotOK != wantOK {
				t.Fatalf("MinHops(%s,%s) = (%d,%v), full computation (%d,%v)",
					src.IA, dst.IA, gotN, gotOK, wantN, wantOK)
			}
		}
	}

	// Restrictive bounds leave distant ISDs unreachable: the ok=false
	// agreement matters as much as the hop counts.
	rng := rand.New(rand.NewSource(17))
	topo2 := randomWorld(t, rng, 5, 4)
	reg2 := segment.Discover(topo2, segment.Options{MaxCoreLen: 2})
	c2 := NewCombiner(topo2, reg2)
	all2 := topo2.ASes()
	sawUnreachable := false
	for trial := 0; trial < 200; trial++ {
		src := all2[rng.Intn(len(all2))].IA
		dst := all2[rng.Intn(len(all2))].IA
		gotN, gotOK := c2.MinHops(src, dst)
		wantN, wantOK := naiveMinHops(topo2, reg2, src, dst)
		if gotN != wantN || gotOK != wantOK {
			t.Fatalf("restricted MinHops(%s,%s) = (%d,%v), full computation (%d,%v)",
				src, dst, gotN, gotOK, wantN, wantOK)
		}
		if !gotOK && src != dst {
			sawUnreachable = true
		}
	}
	if !sawUnreachable {
		t.Error("restricted sweep never hit an unreachable pair; tighten the bounds")
	}
}

// TestPathsMissingLinkError: a registry inconsistent with the topology (a
// segment crossing a link the topology no longer has) must surface as an
// error, not a bogus path — and the error must be cached like a result.
func TestPathsMissingLinkError(t *testing.T) {
	build := func(withLeafLink bool) *topology.Topology {
		topo := topology.New()
		add := func(ia string, typ topology.ASType) {
			topo.MustAddAS(&topology.AS{
				IA: addr.MustParseIA(ia), Name: ia, Type: typ, Site: geo.Zurich,
			})
		}
		add("1-ff00:0:110", topology.Core)
		add("1-ff00:0:111", topology.NonCore)
		add("1-ff00:0:112", topology.NonCore)
		ia := addr.MustParseIA
		topo.MustConnect(topology.ParentChild, ia("1-ff00:0:110"), ia("1-ff00:0:111"), topology.LinkSpec{})
		if withLeafLink {
			topo.MustConnect(topology.ParentChild, ia("1-ff00:0:111"), ia("1-ff00:0:112"), topology.LinkSpec{})
		}
		return topo
	}
	reg := segment.Discover(build(true), segment.Options{})
	c := NewCombiner(build(false), reg)  // same world, leaf link gone
	for round := 0; round < 2; round++ { // second round hits the cached error
		_, err := c.Paths(addr.MustParseIA("1-ff00:0:110"), addr.MustParseIA("1-ff00:0:112"))
		if err == nil {
			t.Fatal("combining over a missing link succeeded")
		}
		want := "pathmgr: path hop 1-ff00:0:111--1-ff00:0:112 has no link"
		if err.Error() != want {
			t.Fatalf("error %q, want %q", err, want)
		}
	}
}
