package pathmgr

import (
	"math/rand"
	"testing"

	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

// randomWorld generates a random valid SCION topology via the library
// generator.
func randomWorld(t *testing.T, rng *rand.Rand, nISD, maxPerISD int) *topology.Topology {
	t.Helper()
	topo, err := topology.Generate(topology.GenerateSpec{
		Seed:             rng.Int63(),
		ISDs:             nISD,
		MaxNonCorePerISD: maxPerISD,
		ExtraCoreLinks:   nISD / 2,
	})
	if err != nil {
		t.Fatalf("generated topology invalid: %v", err)
	}
	return topo
}

// TestCombinerInvariantsOnRandomTopologies asserts, across 30 random
// worlds, the invariants every produced path must satisfy: correct
// endpoints, loop-freedom, link contiguity with matching interface ids, no
// duplicates, hop-count sort order, and sequence self-identification.
func TestCombinerInvariantsOnRandomTopologies(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for world := 0; world < 30; world++ {
		topo := randomWorld(t, rng, 2+rng.Intn(4), 5)
		reg := segment.Discover(topo, segment.Options{})
		c := NewCombiner(topo, reg)
		var all []*topology.AS = topo.ASes()
		if len(all) < 2 {
			continue
		}
		// A handful of random src/dst pairs per world.
		for trial := 0; trial < 6; trial++ {
			src := all[rng.Intn(len(all))].IA
			dst := all[rng.Intn(len(all))].IA
			if src == dst {
				continue
			}
			paths, err := c.Paths(src, dst)
			if err != nil {
				t.Fatalf("world %d: paths %s->%s: %v", world, src, dst, err)
			}
			seen := map[string]bool{}
			prevHops := 0
			for _, p := range paths {
				if p.Hops[0].IA != src || p.Hops[len(p.Hops)-1].IA != dst {
					t.Fatalf("world %d: endpoints wrong: %v", world, p)
				}
				if p.HasLoop() {
					t.Fatalf("world %d: loop: %v", world, p)
				}
				if p.NumHops() < prevHops {
					t.Fatalf("world %d: sort order violated", world)
				}
				prevHops = p.NumHops()
				fp := p.Fingerprint()
				if seen[fp] {
					t.Fatalf("world %d: duplicate path %v", world, p)
				}
				seen[fp] = true
				for i := 0; i+1 < len(p.Hops); i++ {
					l := topo.LinkBetween(p.Hops[i].IA, p.Hops[i+1].IA)
					if l == nil {
						t.Fatalf("world %d: no link %s--%s in %v", world, p.Hops[i].IA, p.Hops[i+1].IA, p)
					}
					wantOut, wantIn := l.AIf, l.BIf
					if l.A != p.Hops[i].IA {
						wantOut, wantIn = l.BIf, l.AIf
					}
					if p.Hops[i].Out != wantOut || p.Hops[i+1].In != wantIn {
						t.Fatalf("world %d: interface mismatch in %v", world, p)
					}
				}
				if !PathSequence(p).MatchPath(p) {
					t.Fatalf("world %d: sequence does not match its path", world)
				}
			}
		}
	}
}

// TestCombinerSymmetricReachability: if A reaches B, B reaches A (our links
// are bidirectional, so reachability must be symmetric).
func TestCombinerSymmetricReachability(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for world := 0; world < 10; world++ {
		topo := randomWorld(t, rng, 3, 4)
		reg := segment.Discover(topo, segment.Options{})
		c := NewCombiner(topo, reg)
		all := topo.ASes()
		for trial := 0; trial < 8; trial++ {
			a := all[rng.Intn(len(all))].IA
			b := all[rng.Intn(len(all))].IA
			if a == b {
				continue
			}
			_, fwd := c.MinHops(a, b)
			_, rev := c.MinHops(b, a)
			if fwd != rev {
				t.Fatalf("world %d: asymmetric reachability %s<->%s (fwd=%v rev=%v)", world, a, b, fwd, rev)
			}
		}
	}
}
