package pathmgr

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

func TestParsePredicate(t *testing.T) {
	cases := []struct {
		in      string
		isd     addr.ISD
		as      string
		nIfIDs  int
		wantErr bool
	}{
		{"0-0#0", 0, "0", 0, false},
		{"16-0#0", 16, "0", 0, false},
		{"16-ffaa:0:1002#0", 16, "ffaa:0:1002", 0, false},
		{"16-ffaa:0:1002#3", 16, "ffaa:0:1002", 1, false},
		{"16-ffaa:0:1002#3,4", 16, "ffaa:0:1002", 2, false},
		{"16-ffaa:0:1002", 16, "ffaa:0:1002", 0, false},
		{"16", 0, "", 0, true},
		{"x-1#1", 0, "", 0, true},
		{"16-zz#1", 0, "", 0, true},
		{"16-1#zz", 0, "", 0, true},
	}
	for _, c := range cases {
		p, err := ParsePredicate(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParsePredicate(%q): want error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", c.in, err)
			continue
		}
		if p.ISD != c.isd || p.AS != addr.MustParseAS(c.as) || len(p.IfIDs) != c.nIfIDs {
			t.Errorf("ParsePredicate(%q) = %+v", c.in, p)
		}
	}
}

func TestPredicateMatchHop(t *testing.T) {
	hop := Hop{IA: addr.MustParseIA("16-ffaa:0:1002"), In: 3, Out: 5}
	match := []string{"0-0", "16-0", "0-ffaa:0:1002", "16-ffaa:0:1002", "16-ffaa:0:1002#3", "16-ffaa:0:1002#5", "16-ffaa:0:1002#3,5"}
	for _, s := range match {
		p, err := ParsePredicate(s)
		if err != nil {
			t.Fatal(err)
		}
		if !p.MatchHop(hop) {
			t.Errorf("%q should match %v", s, hop)
		}
	}
	noMatch := []string{"17-0", "16-ffaa:0:1003", "16-ffaa:0:1002#4", "16-ffaa:0:1002#3,4"}
	for _, s := range noMatch {
		p, err := ParsePredicate(s)
		if err != nil {
			t.Fatal(err)
		}
		if p.MatchHop(hop) {
			t.Errorf("%q should not match %v", s, hop)
		}
	}
}

func TestSequenceRoundTrip(t *testing.T) {
	in := "17-ffaa:1:1#1 17-ffaa:0:1107#3,2 16-ffaa:0:1002#4"
	seq, err := ParseSequence(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("parsed %d predicates, want 3", len(seq))
	}
	reparsed, err := ParseSequence(seq.String())
	if err != nil {
		t.Fatal(err)
	}
	if reparsed.String() != seq.String() {
		t.Errorf("round trip: %q vs %q", reparsed.String(), seq.String())
	}
}

func TestSequenceEmptyMatchesAll(t *testing.T) {
	seq, err := ParseSequence("   ")
	if err != nil {
		t.Fatal(err)
	}
	p := &Path{Hops: []Hop{{IA: addr.MustParseIA("1-1")}}}
	if !seq.MatchPath(p) {
		t.Error("empty sequence should match any path")
	}
}

func TestSequenceLengthMismatch(t *testing.T) {
	seq, _ := ParseSequence("0-0 0-0")
	p := &Path{Hops: []Hop{{IA: addr.MustParseIA("1-1")}}}
	if seq.MatchPath(p) {
		t.Error("length mismatch should not match")
	}
}

// Property: for every path the combiner produces in the world topology, the
// pinned sequence generated from it matches it and no sibling path to the
// same destination.
func TestPathSequenceIdentifiesPathsUniquely(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := NewCombiner(topo, reg)
	for _, dst := range []addr.IA{topology.AWSIreland, topology.MagdeburgAP, topology.KoreaUniv} {
		paths, err := c.Paths(topology.MyAS, dst)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range paths {
			seq := PathSequence(p)
			if !seq.MatchPath(p) {
				t.Fatalf("sequence %q does not match its own path %v", seq, p)
			}
			if got := FindBySequence(paths, seq); got != p {
				t.Errorf("FindBySequence resolved path %d to a different path", i)
			}
			for j, q := range paths {
				if j != i && seq.MatchPath(q) {
					t.Errorf("sequence of path %d also matches path %d", i, j)
				}
			}
		}
	}
}

// Property: predicate String/Parse round trip.
func TestPredicateRoundTripQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		p := Predicate{
			ISD: addr.ISD(rng.Intn(1 << 16)),
			AS:  addr.AS(rng.Uint64() & uint64(addr.MaxAS)),
		}
		for k := rng.Intn(3); k > 0; k-- {
			p.IfIDs = append(p.IfIDs, addr.IfID(1+rng.Intn(1<<16-1)))
		}
		q, err := ParsePredicate(p.String())
		if err != nil {
			return false
		}
		if q.ISD != p.ISD || q.AS != p.AS || len(q.IfIDs) != len(p.IfIDs) {
			return false
		}
		for i := range p.IfIDs {
			if q.IfIDs[i] != p.IfIDs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSequenceGlob(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := NewCombiner(topo, reg)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}

	match := func(s string, p *Path) bool {
		t.Helper()
		seq, err := ParseSequence(s)
		if err != nil {
			t.Fatalf("ParseSequence(%q): %v", s, err)
		}
		return seq.MatchPath(p)
	}

	for _, p := range paths {
		// A leading/trailing glob matches every path between the endpoints.
		if !match("17-ffaa:1:1 * 16-ffaa:0:1002", p) {
			t.Errorf("endpoint glob missed %v", p)
		}
		// Pure glob matches everything.
		if !match("*", p) {
			t.Errorf("bare glob missed %v", p)
		}
		// Glob round trip.
		seq, _ := ParseSequence("17-ffaa:1:1 * 16-ffaa:0:1002")
		re, err := ParseSequence(seq.String())
		if err != nil || re.String() != seq.String() {
			t.Fatalf("glob round trip: %q vs %q (%v)", re.String(), seq.String(), err)
		}
	}

	// "* 16-ffaa:0:1004 *" selects exactly the Ohio paths.
	for _, p := range paths {
		got := match("* 16-ffaa:0:1004#0 *", p)
		want := p.Contains(topology.AWSOhio)
		if got != want {
			t.Errorf("Ohio glob on %v: got %v want %v", p, got, want)
		}
	}

	// ISD-level partial pin: any path via ISD 19.
	for _, p := range paths {
		got := match("* 19-0 *", p)
		want := false
		for _, h := range p.Hops {
			if h.IA.ISD == 19 {
				want = true
			}
		}
		if got != want {
			t.Errorf("ISD glob on %v: got %v want %v", p, got, want)
		}
	}

	// Non-matching pinned middle.
	for _, p := range paths {
		if match("17-ffaa:1:1 99-0 *", p) {
			t.Errorf("bogus middle matched %v", p)
		}
	}

	// Without globs, exact-length semantics are preserved: a prefix does
	// not match.
	short := PathSequence(paths[0])[:3]
	if short.MatchPath(paths[0]) {
		t.Error("prefix without glob matched")
	}
}

func TestSequenceGlobConsumesZeroHops(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := NewCombiner(topo, reg)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	p := paths[0]
	// Glob between two adjacent pinned hops must match zero hops.
	s := fmt.Sprintf("%d-%s * %d-%s *", p.Hops[0].IA.ISD, p.Hops[0].IA.AS,
		p.Hops[1].IA.ISD, p.Hops[1].IA.AS)
	seq, err := ParseSequence(s)
	if err != nil {
		t.Fatal(err)
	}
	if !seq.MatchPath(p) {
		t.Errorf("zero-hop glob failed for %v", p)
	}
	// Trailing glob after the full pin.
	full := PathSequence(p).String() + " *"
	seq2, _ := ParseSequence(full)
	if !seq2.MatchPath(p) {
		t.Error("trailing glob after full pin failed")
	}
}

func TestHopString(t *testing.T) {
	src := Hop{IA: addr.MustParseIA("17-ffaa:1:1"), Out: 1}
	mid := Hop{IA: addr.MustParseIA("17-ffaa:0:1107"), In: 3, Out: 2}
	dst := Hop{IA: addr.MustParseIA("16-ffaa:0:1002"), In: 4}
	if src.String() != "17-ffaa:1:1#1" {
		t.Errorf("src hop: %q", src.String())
	}
	if mid.String() != "17-ffaa:0:1107#3,2" {
		t.Errorf("mid hop: %q", mid.String())
	}
	if dst.String() != "16-ffaa:0:1002#4" {
		t.Errorf("dst hop: %q", dst.String())
	}
}
