package pathmgr

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

// Combiner produces end-to-end paths from a segment registry, the role the
// SCION daemon plays for the scion tools. It is safe for concurrent use:
// combinations are served from a generation-stamped (src,dst) cache with
// single-flight fill, and segment metadata (hop lists, link MTU/latency
// suffix aggregates) is indexed lazily so repeated queries never re-walk
// the topology. A Combiner published through an atomic.Pointer is a frozen
// snapshot; all mutable state lives behind the metaStore and cache-shard
// locks.
type Combiner struct {
	topo *topology.Topology
	reg  *segment.Registry

	metas *metaStore
	// cache is the current combination-cache generation. Invalidate swaps
	// in a fresh empty generation; the value itself is never mutated.
	cache atomic.Pointer[combineCache]
}

// NewCombiner returns a combiner over the given topology and registry.
func NewCombiner(topo *topology.Topology, reg *segment.Registry) *Combiner {
	c := &Combiner{topo: topo, reg: reg, metas: newMetaStore(topo, reg)}
	c.cache.Store(newCombineCache(0))
	return c
}

// Generation returns the combination-cache generation, bumped by every
// Invalidate. Diagnostics use it to tell cached from recombined answers.
func (c *Combiner) Generation() int64 { return c.cache.Load().gen }

// Invalidate atomically discards all cached combinations by publishing a
// fresh cache generation. In-flight queries finish against the generation
// they loaded; later queries recombine from the registry.
func (c *Combiner) Invalidate() {
	for {
		old := c.cache.Load()
		if c.cache.CompareAndSwap(old, newCombineCache(old.gen+1)) {
			return
		}
	}
}

// Paths returns all loop-free end-to-end paths from src to dst,
// deduplicated and sorted by hop count (then fingerprint for determinism),
// the order showpaths uses. Results come from the combination cache when
// the pair was combined before in the current generation; either way the
// returned Path structs are private to the caller (the daemon stamps
// expiry and probe status on them), though Hops slices are shared and must
// be treated as read-only.
func (c *Combiner) Paths(src, dst addr.IA) ([]*Path, error) {
	if src == dst {
		return nil, fmt.Errorf("pathmgr: src and dst are both %s", src)
	}
	if c.topo.AS(src) == nil {
		return nil, fmt.Errorf("pathmgr: unknown source AS %s", src)
	}
	if c.topo.AS(dst) == nil {
		return nil, fmt.Errorf("pathmgr: unknown destination AS %s", dst)
	}

	key := pairKey{src, dst}
	sh := c.cache.Load().shards[key.shard()]
	sh.mu.Lock()
	e := sh.entries[key]
	if e == nil {
		e = &cacheEntry{done: make(chan struct{})}
		sh.entries[key] = e
		sh.mu.Unlock()
		e.paths, e.err = c.combine(src, dst)
		close(e.done)
	} else {
		sh.mu.Unlock()
		<-e.done
	}
	if e.err != nil {
		return nil, e.err
	}
	return clonePaths(e.paths), nil
}

// combine enumerates the up/core/down segment combinations for the pair:
// the uncached path, run at most once per pair and generation.
func (c *Combiner) combine(src, dst addr.IA) ([]*Path, error) {
	srcCore := c.topo.AS(src).Type == topology.Core
	dstCore := c.topo.AS(dst).Type == topology.Core

	var (
		out    []*Path
		hashes map[uint64][]int
	)
	// add records a candidate unless an identical hop tuple was already
	// recorded (first wins, like the original fingerprint-map dedup, but
	// hashing the tuple directly instead of rendering and SHA-summing the
	// sequence string).
	add := func(hops []Hop, mtu int, lat time.Duration) {
		h := hashHops(hops)
		if hashes == nil {
			hashes = make(map[uint64][]int)
		}
		for _, i := range hashes[h] {
			if hopsEqual(out[i].Hops, hops) {
				return
			}
		}
		hashes[h] = append(hashes[h], len(out))
		out = append(out, &Path{
			Src: src, Dst: dst, Hops: hops,
			MTU: mtu, MinLatency: lat, Status: "alive",
		})
	}

	switch {
	case srcCore && dstCore:
		// Core segments are simple paths: no loop check needed.
		for _, sm := range c.metas.corePair(src, dst) {
			if sm.lastBad >= 0 {
				return nil, sm.err
			}
			add(sm.hopsDown, sm.sufMTU[0], sm.sufLat[0])
		}
	case srcCore && !dstCore:
		for _, dm := range c.metas.leafMetas(dst) {
			if dm.seg.First() == src {
				if dm.lastBad >= 0 {
					return nil, dm.err
				}
				add(dm.hopsDown, dm.sufMTU[0], dm.sufLat[0])
				continue
			}
			for _, sm := range c.metas.corePair(src, dm.seg.First()) {
				hops := joinHops(sm.hopsDown, dm.hopsDown)
				if hopsHaveLoop(hops) {
					continue
				}
				if sm.lastBad >= 0 {
					return nil, sm.err
				}
				if dm.lastBad >= 0 {
					return nil, dm.err
				}
				add(hops, mergeMTU(sm.sufMTU[0], dm.sufMTU[0]), sm.sufLat[0]+dm.sufLat[0])
			}
		}
	case !srcCore && dstCore:
		for _, um := range c.metas.leafMetas(src) {
			if um.seg.First() == dst {
				if um.lastBad >= 0 {
					return nil, um.err
				}
				add(um.hopsUp, um.sufMTU[0], um.sufLat[0])
				continue
			}
			for _, sm := range c.metas.corePair(um.seg.First(), dst) {
				hops := joinHops(um.hopsUp, sm.hopsDown)
				if hopsHaveLoop(hops) {
					continue
				}
				if um.lastBad >= 0 {
					return nil, um.err
				}
				if sm.lastBad >= 0 {
					return nil, sm.err
				}
				add(hops, mergeMTU(um.sufMTU[0], sm.sufMTU[0]), um.sufLat[0]+sm.sufLat[0])
			}
		}
	default:
		for _, um := range c.metas.leafMetas(src) {
			u := um.seg
			for _, dm := range c.metas.leafMetas(dst) {
				d := dm.seg
				if u.First() == d.First() {
					// Same-anchor shortcut: splice at the last shared AS.
					// The parts share no other AS by construction, so the
					// result is loop-free.
					i, j := spliceIndexes(u, d)
					if um.lastBad >= i {
						return nil, um.err
					}
					if dm.lastBad >= j {
						return nil, dm.err
					}
					hops := joinHops(um.hopsUp[:len(u.Entries)-i], dm.hopsDown[j:])
					add(hops, mergeMTU(um.sufMTU[i], dm.sufMTU[j]), um.sufLat[i]+dm.sufLat[j])
					continue
				}
				for _, sm := range c.metas.corePair(u.First(), d.First()) {
					hops := joinHops(joinHops(um.hopsUp, sm.hopsDown), dm.hopsDown)
					if hopsHaveLoop(hops) {
						continue
					}
					if um.lastBad >= 0 {
						return nil, um.err
					}
					if sm.lastBad >= 0 {
						return nil, sm.err
					}
					if dm.lastBad >= 0 {
						return nil, dm.err
					}
					mtu := mergeMTU(mergeMTU(um.sufMTU[0], sm.sufMTU[0]), dm.sufMTU[0])
					add(hops, mtu, um.sufLat[0]+sm.sufLat[0]+dm.sufLat[0])
				}
			}
		}
	}

	if len(out) > 1 {
		// Fingerprints are computed once per path, not once per comparison.
		fps := make([]string, len(out))
		for i, p := range out {
			fps[i] = p.Fingerprint()
		}
		sort.Sort(&pathSorter{paths: out, fps: fps})
	}
	return out, nil
}

// MinHops returns the minimum hop count to dst, or 0 with ok=false when
// dst is unreachable. Unlike Paths it never materialises, annotates or
// sorts candidates: it walks segment lengths with the same enumeration and
// loop checks, which keeps daemon-wide reachability reports cheap. It
// assumes the registry is consistent with the topology (beaconing only
// emits segments over existing links).
func (c *Combiner) MinHops(src, dst addr.IA) (int, bool) {
	if src == dst {
		return 0, false
	}
	srcAS, dstAS := c.topo.AS(src), c.topo.AS(dst)
	if srcAS == nil || dstAS == nil {
		return 0, false
	}
	srcCore := srcAS.Type == topology.Core
	dstCore := dstAS.Type == topology.Core

	best := 0
	consider := func(n int) {
		if best == 0 || n < best {
			best = n
		}
	}
	switch {
	case srcCore && dstCore:
		// Core lists are sorted shortest-first and loop-free.
		if segs := c.reg.CoreSegments(src, dst); len(segs) > 0 {
			consider(segs[0].Len())
		}
	case srcCore && !dstCore:
		for _, d := range c.reg.DownSegments(dst) {
			if d.First() == src {
				consider(d.Len())
				continue
			}
			for _, s := range c.reg.CoreSegments(src, d.First()) {
				n := s.Len() + d.Len() - 1
				if best != 0 && n >= best {
					break // core lists sorted by length: no shorter join follows
				}
				if overlapEntries(s.Entries, d.Entries[1:]) {
					continue
				}
				consider(n)
			}
		}
	case !srcCore && dstCore:
		for _, u := range c.reg.UpSegments(src) {
			if u.First() == dst {
				consider(u.Len())
				continue
			}
			for _, s := range c.reg.CoreSegments(u.First(), dst) {
				n := u.Len() + s.Len() - 1
				if best != 0 && n >= best {
					break
				}
				if overlapEntries(u.Entries, s.Entries[1:]) {
					continue
				}
				consider(n)
			}
		}
	default:
		for _, u := range c.reg.UpSegments(src) {
			for _, d := range c.reg.DownSegments(dst) {
				if u.First() == d.First() {
					i, j := spliceIndexes(u, d)
					consider(len(u.Entries) - i + len(d.Entries) - j - 1)
					continue
				}
				for _, s := range c.reg.CoreSegments(u.First(), d.First()) {
					n := u.Len() + s.Len() + d.Len() - 2
					if best != 0 && n >= best {
						break
					}
					if overlapEntries(u.Entries, s.Entries[1:]) ||
						overlapEntries(u.Entries, d.Entries[1:]) ||
						overlapEntries(s.Entries[1:], d.Entries[1:]) {
						continue
					}
					consider(n)
				}
			}
		}
	}
	if best == 0 {
		return 0, false
	}
	return best, true
}

// pathSorter sorts paths by (hop count, fingerprint) while keeping the
// precomputed fingerprints aligned.
type pathSorter struct {
	paths []*Path
	fps   []string
}

func (s *pathSorter) Len() int { return len(s.paths) }
func (s *pathSorter) Swap(i, j int) {
	s.paths[i], s.paths[j] = s.paths[j], s.paths[i]
	s.fps[i], s.fps[j] = s.fps[j], s.fps[i]
}
func (s *pathSorter) Less(i, j int) bool {
	if s.paths[i].NumHops() != s.paths[j].NumHops() {
		return s.paths[i].NumHops() < s.paths[j].NumHops()
	}
	return s.fps[i] < s.fps[j]
}

// clonePaths gives the caller its own Path structs over the cached hop
// slices, so expiry stamping and probing never write into the cache.
func clonePaths(in []*Path) []*Path {
	if in == nil {
		return nil
	}
	out := make([]*Path, len(in))
	for i, p := range in {
		cp := *p
		out[i] = &cp
	}
	return out
}

// hopsHaveLoop reports whether any AS repeats. Paths are short (a dozen
// hops at most), so the quadratic scan beats allocating a set.
func hopsHaveLoop(hops []Hop) bool {
	for i := 1; i < len(hops); i++ {
		for j := 0; j < i; j++ {
			if hops[j].IA == hops[i].IA {
				return true
			}
		}
	}
	return false
}

// overlapEntries reports whether the two entry lists share an AS.
func overlapEntries(a, b []segment.ASEntry) bool {
	for _, ea := range a {
		for _, eb := range b {
			if ea.IA == eb.IA {
				return true
			}
		}
	}
	return false
}

// spliceIndexes locates the SCION common-AS shortcut between an up and a
// down segment anchored at the same core AS: the last AS of d (scanning
// from the leaf) that also lies on u. Both segments contain the shared
// anchor at index 0, so a splice always exists.
func spliceIndexes(u, d *segment.Segment) (int, int) {
	for j := len(d.Entries) - 1; j >= 0; j-- {
		for i, e := range u.Entries {
			if e.IA == d.Entries[j].IA {
				return i, j
			}
		}
	}
	return 0, 0 // unreachable: index 0 is shared
}

// upHops converts an up segment (stored in core->leaf beacon order) into
// packet-direction hops leaf->core. The beacon's egress interface becomes
// the packet's ingress and vice versa.
func upHops(u *segment.Segment) []Hop {
	n := len(u.Entries)
	hops := make([]Hop, n)
	for i, e := range u.Entries {
		hops[n-1-i] = Hop{IA: e.IA, In: e.Out, Out: e.In}
	}
	return hops
}

// downHops converts a down segment into packet-direction hops core->leaf,
// which is the beacon direction itself. Core segments registered for the
// src->dst direction convert the same way.
func downHops(d *segment.Segment) []Hop {
	hops := make([]Hop, len(d.Entries))
	for i, e := range d.Entries {
		hops[i] = Hop{IA: e.IA, In: e.In, Out: e.Out}
	}
	return hops
}

// joinHops concatenates two hop lists that share their boundary AS, merging
// the duplicate into a single transit hop.
func joinHops(a, b []Hop) []Hop {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Hop, 0, len(a)+len(b)-1)
	out = append(out, a[:len(a)-1]...)
	out = append(out, Hop{IA: a[len(a)-1].IA, In: a[len(a)-1].In, Out: b[0].Out})
	out = append(out, b[1:]...)
	return out
}
