package pathmgr

import (
	"fmt"
	"sort"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

// Combiner produces end-to-end paths from a segment registry, the role the
// SCION daemon plays for the scion tools.
type Combiner struct {
	topo *topology.Topology
	reg  *segment.Registry
}

// NewCombiner returns a combiner over the given topology and registry.
func NewCombiner(topo *topology.Topology, reg *segment.Registry) *Combiner {
	return &Combiner{topo: topo, reg: reg}
}

// Paths returns all loop-free end-to-end paths from src to dst, deduplicated
// and sorted by hop count (then fingerprint for determinism), the order
// showpaths uses.
func (c *Combiner) Paths(src, dst addr.IA) ([]*Path, error) {
	if src == dst {
		return nil, fmt.Errorf("pathmgr: src and dst are both %s", src)
	}
	srcAS, dstAS := c.topo.AS(src), c.topo.AS(dst)
	if srcAS == nil {
		return nil, fmt.Errorf("pathmgr: unknown source AS %s", src)
	}
	if dstAS == nil {
		return nil, fmt.Errorf("pathmgr: unknown destination AS %s", dst)
	}

	srcCore := srcAS.Type == topology.Core
	dstCore := dstAS.Type == topology.Core

	var candidates [][]Hop
	switch {
	case srcCore && dstCore:
		for _, s := range c.reg.CoreSegments(src, dst) {
			candidates = append(candidates, coreHops(s))
		}
	case srcCore && !dstCore:
		for _, d := range c.reg.DownSegments(dst) {
			if d.First() == src {
				candidates = append(candidates, downHops(d))
				continue
			}
			for _, s := range c.reg.CoreSegments(src, d.First()) {
				candidates = append(candidates, joinHops(coreHops(s), downHops(d)))
			}
		}
	case !srcCore && dstCore:
		for _, u := range c.reg.UpSegments(src) {
			if u.First() == dst {
				candidates = append(candidates, upHops(u))
				continue
			}
			for _, s := range c.reg.CoreSegments(u.First(), dst) {
				candidates = append(candidates, joinHops(upHops(u), coreHops(s)))
			}
		}
	default:
		for _, u := range c.reg.UpSegments(src) {
			for _, d := range c.reg.DownSegments(dst) {
				if u.First() == d.First() {
					if hops, ok := spliceShortcut(u, d); ok {
						candidates = append(candidates, hops)
					}
					continue
				}
				for _, s := range c.reg.CoreSegments(u.First(), d.First()) {
					candidates = append(candidates, joinHops(joinHops(upHops(u), coreHops(s)), downHops(d)))
				}
			}
		}
	}

	seen := map[string]bool{}
	var out []*Path
	for _, hops := range candidates {
		p := &Path{Src: src, Dst: dst, Hops: hops}
		if p.HasLoop() {
			continue
		}
		if err := p.annotate(c.topo); err != nil {
			return nil, err
		}
		fp := p.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].NumHops() != out[j].NumHops() {
			return out[i].NumHops() < out[j].NumHops()
		}
		return out[i].Fingerprint() < out[j].Fingerprint()
	})
	return out, nil
}

// MinHops returns the minimum hop count to dst, or 0 with ok=false when dst
// is unreachable.
func (c *Combiner) MinHops(src, dst addr.IA) (int, bool) {
	paths, err := c.Paths(src, dst)
	if err != nil || len(paths) == 0 {
		return 0, false
	}
	return paths[0].NumHops(), true
}

// upHops converts an up segment (stored in core->leaf beacon order) into
// packet-direction hops leaf->core. The beacon's egress interface becomes
// the packet's ingress and vice versa.
func upHops(u *segment.Segment) []Hop {
	n := len(u.Entries)
	hops := make([]Hop, n)
	for i, e := range u.Entries {
		hops[n-1-i] = Hop{IA: e.IA, In: e.Out, Out: e.In}
	}
	return hops
}

// downHops converts a down segment into packet-direction hops core->leaf,
// which is the beacon direction itself.
func downHops(d *segment.Segment) []Hop {
	hops := make([]Hop, len(d.Entries))
	for i, e := range d.Entries {
		hops[i] = Hop{IA: e.IA, In: e.In, Out: e.Out}
	}
	return hops
}

// coreHops converts a core segment registered for the src->dst direction.
func coreHops(s *segment.Segment) []Hop {
	return downHops(s)
}

// joinHops concatenates two hop lists that share their boundary AS, merging
// the duplicate into a single transit hop.
func joinHops(a, b []Hop) []Hop {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]Hop, 0, len(a)+len(b)-1)
	out = append(out, a[:len(a)-1]...)
	out = append(out, Hop{IA: a[len(a)-1].IA, In: a[len(a)-1].In, Out: b[0].Out})
	out = append(out, b[1:]...)
	return out
}

// spliceShortcut joins an up and a down segment anchored at the same core
// AS, cutting at the last AS the two segments share (the SCION common-AS
// shortcut). When the only shared AS is the core itself this is the
// ordinary core join.
func spliceShortcut(u, d *segment.Segment) ([]Hop, bool) {
	uIdx := make(map[addr.IA]int, len(u.Entries))
	for i, e := range u.Entries {
		uIdx[e.IA] = i
	}
	spliceJ := -1
	for j := len(d.Entries) - 1; j >= 0; j-- {
		if _, ok := uIdx[d.Entries[j].IA]; ok {
			spliceJ = j
			break
		}
	}
	if spliceJ < 0 {
		return nil, false
	}
	i := uIdx[d.Entries[spliceJ].IA]
	// Up part: entries i..end reversed (leaf -> common AS).
	up := upHops(&segment.Segment{Type: segment.Up, Entries: u.Entries[i:]})
	// Down part: entries spliceJ..end (common AS -> leaf).
	down := downHops(&segment.Segment{Type: segment.Down, Entries: d.Entries[spliceJ:]})
	return joinHops(up, down), true
}
