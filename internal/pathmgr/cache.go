package pathmgr

import (
	"sync"

	"github.com/upin/scionpath/internal/addr"
)

// combineShards spreads the combination cache over independent locks so
// concurrent daemons (forks share one combiner) rarely contend.
const combineShards = 16

// pairKey identifies an ordered (src, dst) combination query.
type pairKey struct{ src, dst addr.IA }

// combineCache is one generation of the (src,dst) -> paths combination
// cache. It is published through Combiner.cache (atomic.Pointer) and is
// therefore frozen after construction: invalidation replaces the whole
// value with a fresh one, never mutates the current one. The mutable entry
// maps live behind the per-shard locks.
type combineCache struct {
	// gen is the cache generation, bumped by every Invalidate.
	gen    int64
	shards [combineShards]*cacheShard
}

// cacheShard holds the entries whose pair key hashes onto it.
type cacheShard struct {
	// mu guards entries.
	mu      sync.Mutex
	entries map[pairKey]*cacheEntry
}

// cacheEntry is a single-flight slot for one (src, dst) pair: the caller
// that inserts it computes the combination with the shard unlocked and
// closes done; concurrent callers for the same pair block on done and read
// the shared result instead of recombining.
type cacheEntry struct {
	done  chan struct{}
	paths []*Path
	err   error
}

func newCombineCache(gen int64) *combineCache {
	cc := &combineCache{gen: gen}
	for i := range cc.shards {
		cc.shards[i] = &cacheShard{entries: make(map[pairKey]*cacheEntry)}
	}
	return cc
}

// shard picks the cache shard for the key (FNV-1a over the IA words).
func (k pairKey) shard() int {
	h := fnvOffset
	h = fnvMix(h, uint64(k.src.ISD))
	h = fnvMix(h, uint64(k.src.AS))
	h = fnvMix(h, uint64(k.dst.ISD))
	h = fnvMix(h, uint64(k.dst.AS))
	return int(h % combineShards)
}

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// fnvMix folds one word into an FNV-1a style running hash.
func fnvMix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// hashHops hashes a hop tuple for duplicate detection; collisions are
// resolved by hopsEqual, so the hash only needs to spread well.
func hashHops(hops []Hop) uint64 {
	h := fnvOffset
	for _, hp := range hops {
		h = fnvMix(h, uint64(hp.IA.ISD))
		h = fnvMix(h, uint64(hp.IA.AS))
		h = fnvMix(h, uint64(hp.In))
		h = fnvMix(h, uint64(hp.Out))
	}
	return h
}

func hopsEqual(a, b []Hop) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
