package pathmgr

import (
	"testing"

	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

func TestParseACL(t *testing.T) {
	acl, err := ParseACL("- 16-ffaa:0:1004#0")
	if err != nil {
		t.Fatal(err)
	}
	// Auto-appended default allow.
	if got := acl.String(); got != "- 16-ffaa:0:1004, +" {
		t.Errorf("String: %q", got)
	}
	acl2, err := ParseACL("+ 17-0, -")
	if err != nil {
		t.Fatal(err)
	}
	if got := acl2.String(); got != "+ 17-0, -" {
		t.Errorf("explicit default: %q", got)
	}
}

func TestParseACLErrors(t *testing.T) {
	for _, s := range []string{"", "  ,  ", "16-0", "* 16-0", "- zz"} {
		if _, err := ParseACL(s); err == nil {
			t.Errorf("ParseACL(%q) accepted", s)
		}
	}
}

func TestACLDenyTransit(t *testing.T) {
	c := worldCombiner(t)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	acl, err := ParseACL("- 16-ffaa:0:1004#0, - 16-ffaa:0:1007#0")
	if err != nil {
		t.Fatal(err)
	}
	kept := acl.FilterPaths(paths)
	if len(kept) == 0 || len(kept) >= len(paths) {
		t.Fatalf("filter kept %d of %d", len(kept), len(paths))
	}
	for _, p := range kept {
		if p.Contains(topology.AWSOhio) || p.Contains(topology.AWSSingapore) {
			t.Errorf("denied transit survived: %v", p)
		}
	}
}

func TestACLAllowListSemantics(t *testing.T) {
	c := worldCombiner(t)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	// Allow only ISDs 16 and 17; everything else default-denied.
	acl, err := ParseACL("+ 16-0, + 17-0, -")
	if err != nil {
		t.Fatal(err)
	}
	kept := acl.FilterPaths(paths)
	if len(kept) == 0 {
		t.Fatal("allow-list kept nothing")
	}
	for _, p := range kept {
		if p.ISDSetKey() != "16-17" {
			t.Errorf("path outside the allow-list survived: ISDs %s", p.ISDSetKey())
		}
	}
}

func TestACLFirstMatchWins(t *testing.T) {
	c := worldCombiner(t)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	// Allow Ohio explicitly before a deny of all of ISD 16: Ohio paths
	// survive because the allow matches their Ohio hop first... but their
	// other ISD-16 hops still hit the deny, so they are rejected; only the
	// ordering of entries per hop matters.
	aclA, _ := ParseACL("+ 16-ffaa:0:1004, - 16-0, +")
	keptA := aclA.FilterPaths(paths)
	for _, p := range keptA {
		for _, h := range p.Hops {
			if h.IA.ISD == 16 && h.IA != topology.AWSOhio {
				t.Errorf("hop %s should have been denied", h.IA)
			}
		}
	}
	// Reversed order: deny ISD 16 first kills the Ohio allow too.
	aclB, _ := ParseACL("- 16-0, + 16-ffaa:0:1004, +")
	for _, p := range aclB.FilterPaths(paths) {
		for _, h := range p.Hops {
			if h.IA.ISD == 16 {
				t.Errorf("ISD 16 hop survived a leading deny: %s", h.IA)
			}
		}
	}
}

func TestACLNilPermitsAll(t *testing.T) {
	c := worldCombiner(t)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	var acl *ACL
	if got := acl.FilterPaths(paths); len(got) != len(paths) {
		t.Errorf("nil ACL filtered %d of %d", len(got), len(paths))
	}
}

func TestACLInterfacePinning(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := NewCombiner(topo, reg)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	// Deny one specific interface of the AP; only paths using that
	// interface disappear.
	target := paths[0].Hops[1]
	pred := Predicate{ISD: target.IA.ISD, AS: target.IA.AS}
	pred.IfIDs = append(pred.IfIDs, target.Out)
	acl2, err := ParseACL("- " + pred.String())
	if err != nil {
		t.Fatal(err)
	}
	kept := acl2.FilterPaths(paths)
	for _, p := range kept {
		for _, h := range p.Hops {
			if h.IA == target.IA && (h.In == target.Out || h.Out == target.Out) {
				t.Errorf("pinned interface survived: %v", p)
			}
		}
	}
	if len(kept) == len(paths) {
		t.Error("interface pin filtered nothing")
	}
}
