package pathmgr

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/upin/scionpath/internal/addr"
)

// Predicate is a hop predicate "ISD-AS#IF" as accepted by the scion tools'
// --sequence flag. Zero components are wildcards: "0-0#0" matches any hop,
// "16-0#0" matches any hop in ISD 16, "16-ffaa:0:1002#0" matches any
// interface of that AS, and "16-ffaa:0:1002#3" pins one interface.
type Predicate struct {
	ISD addr.ISD
	AS  addr.AS
	// IfIDs are the interfaces the predicate pins; empty means wildcard.
	IfIDs []addr.IfID
}

// ParsePredicate parses "ISD-AS", "ISD-AS#IF" or "ISD-AS#IF1,IF2".
func ParsePredicate(s string) (Predicate, error) {
	iaPart, ifPart, hasIf := strings.Cut(s, "#")
	var p Predicate
	isdStr, asStr, ok := strings.Cut(iaPart, "-")
	if !ok {
		return p, fmt.Errorf("pathmgr: predicate %q: missing '-'", s)
	}
	isd, err := strconv.ParseUint(isdStr, 10, 16)
	if err != nil {
		return p, fmt.Errorf("pathmgr: predicate %q: bad ISD: %w", s, err)
	}
	p.ISD = addr.ISD(isd)
	as, err := addr.ParseAS(asStr)
	if err != nil {
		return p, fmt.Errorf("pathmgr: predicate %q: %w", s, err)
	}
	p.AS = as
	if hasIf && ifPart != "" {
		for _, part := range strings.Split(ifPart, ",") {
			ifid, err := strconv.ParseUint(strings.TrimSpace(part), 10, 16)
			if err != nil {
				return p, fmt.Errorf("pathmgr: predicate %q: bad interface: %w", s, err)
			}
			if ifid != 0 {
				p.IfIDs = append(p.IfIDs, addr.IfID(ifid))
			}
		}
	}
	return p, nil
}

// String renders the predicate canonically.
func (p Predicate) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d-%s", p.ISD, p.AS)
	if len(p.IfIDs) > 0 {
		b.WriteByte('#')
		for i, ifid := range p.IfIDs {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", ifid)
		}
	}
	return b.String()
}

// MatchHop reports whether the predicate matches a hop. Wildcard components
// (zero) match anything; interface lists match if every listed interface is
// one of the hop's in/out interfaces.
func (p Predicate) MatchHop(h Hop) bool {
	if p.ISD != 0 && p.ISD != h.IA.ISD {
		return false
	}
	if p.AS != 0 && p.AS != h.IA.AS {
		return false
	}
	for _, ifid := range p.IfIDs {
		if ifid != h.In && ifid != h.Out {
			return false
		}
	}
	return true
}

// Sequence is an ordered list of hop predicates that a whole path must
// satisfy hop-by-hop, the semantics the paper's test-suite relies on when it
// passes `--sequence '{hop_predicates}'` to pin the exact route under test.
// An element may also be the glob token "*", matching any run of hops (zero
// or more), so partial routes can be pinned: "17-ffaa:1:1#1 * 19-0 *"
// accepts any path leaving MY_AS that crosses ISD 19.
type Sequence []Predicate

// globIfIDMarker marks the "*" token inside a Sequence: a predicate with
// ISD 0, AS 0 and this sentinel interface id. Interface 0 stays the
// ordinary wildcard, so the sentinel can never be produced by parsing a
// hop predicate.
const globIfIDMarker = 0xffff

func globToken() Predicate {
	return Predicate{IfIDs: []addr.IfID{globIfIDMarker}}
}

// isGlob reports whether the predicate is the "*" token.
func (p Predicate) isGlob() bool {
	return p.ISD == 0 && p.AS == 0 && len(p.IfIDs) == 1 && p.IfIDs[0] == globIfIDMarker
}

// ParseSequence parses a space-separated predicate list; "*" elements are
// glob tokens. An empty string yields an empty sequence, which matches
// every path.
func ParseSequence(s string) (Sequence, error) {
	fields := strings.Fields(s)
	seq := make(Sequence, 0, len(fields))
	for _, f := range fields {
		if f == "*" {
			seq = append(seq, globToken())
			continue
		}
		p, err := ParsePredicate(f)
		if err != nil {
			return nil, err
		}
		seq = append(seq, p)
	}
	return seq, nil
}

// String renders the sequence in the form accepted by ParseSequence.
func (s Sequence) String() string {
	parts := make([]string, len(s))
	for i, p := range s {
		if p.isGlob() {
			parts[i] = "*"
		} else {
			parts[i] = p.String()
		}
	}
	return strings.Join(parts, " ")
}

// MatchPath reports whether the path satisfies the sequence. Without glob
// tokens the match is positional and length-exact (a fully pinned route);
// "*" tokens absorb any run of hops.
func (s Sequence) MatchPath(p *Path) bool {
	if len(s) == 0 {
		return true
	}
	return matchFrom(s, p.Hops)
}

// matchFrom is a standard glob matcher over (predicates, hops).
func matchFrom(seq []Predicate, hops []Hop) bool {
	// Iterative two-pointer with backtracking on the last glob.
	i, j := 0, 0
	star, starHop := -1, 0
	for j < len(hops) {
		switch {
		case i < len(seq) && seq[i].isGlob():
			star, starHop = i, j
			i++
		case i < len(seq) && seq[i].MatchHop(hops[j]):
			i++
			j++
		case star >= 0:
			starHop++
			i, j = star+1, starHop
		default:
			return false
		}
	}
	for i < len(seq) && seq[i].isGlob() {
		i++
	}
	return i == len(seq)
}

// PathSequence builds the fully pinned sequence of a path, such that
// PathSequence(p).MatchPath(p) always holds and distinguishes p from any
// other loop-free path between the same endpoints.
func PathSequence(p *Path) Sequence {
	seq := make(Sequence, len(p.Hops))
	for i, h := range p.Hops {
		var ifids []addr.IfID
		if h.In != 0 {
			ifids = append(ifids, h.In)
		}
		if h.Out != 0 {
			ifids = append(ifids, h.Out)
		}
		seq[i] = Predicate{ISD: h.IA.ISD, AS: h.IA.AS, IfIDs: ifids}
	}
	return seq
}

// FindBySequence returns the first path in paths matched by the sequence,
// or nil. The measurement runner uses it to resolve the stored hop
// predicates of a database path back to a live path object.
func FindBySequence(paths []*Path, seq Sequence) *Path {
	for _, p := range paths {
		if seq.MatchPath(p) {
			return p
		}
	}
	return nil
}
