package pathmgr_test

import (
	"fmt"

	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

func ExampleCombiner_Paths() {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	combiner := pathmgr.NewCombiner(topo, reg)
	paths, err := combiner.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		panic(err)
	}
	p := paths[0]
	fmt.Printf("%d paths; shortest has %d hops via ISDs {%s}\n",
		len(paths), p.NumHops(), p.ISDSetKey())
	// Output: 40 paths; shortest has 6 hops via ISDs {16-17}
}

func ExampleParseSequence() {
	// A partial pin: any path from MY_AS that crosses ISD 19.
	seq, err := pathmgr.ParseSequence("17-ffaa:1:1 * 19-0 *")
	if err != nil {
		panic(err)
	}
	fmt.Println(seq)
	// Output: 17-ffaa:1:1 * 19-0 *
}

func ExampleParseACL() {
	// Deny the jittery long-distance transits of the paper's §6.1.
	acl, err := pathmgr.ParseACL("- 16-ffaa:0:1004#0, - 16-ffaa:0:1007#0")
	if err != nil {
		panic(err)
	}
	fmt.Println(acl)
	// Output: - 16-ffaa:0:1004, - 16-ffaa:0:1007, +
}
