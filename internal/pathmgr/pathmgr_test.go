package pathmgr

import (
	"testing"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

func worldCombiner(t testing.TB) *Combiner {
	t.Helper()
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	return NewCombiner(topo, reg)
}

func TestPathsToIreland(t *testing.T) {
	c := worldCombiner(t)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("only %d paths to Ireland, want a rich path set", len(paths))
	}
	// Paper Fig 5: the shortest paths to Ireland have 6 hops.
	if got := paths[0].NumHops(); got != 6 {
		t.Errorf("min hops to Ireland = %d, want 6", got)
	}
	// Sorted by hop count.
	for i := 1; i < len(paths); i++ {
		if paths[i].NumHops() < paths[i-1].NumHops() {
			t.Fatalf("paths not sorted by hop count at %d", i)
		}
	}
	// Long-distance detours exist: some path traverses Ohio, some Singapore
	// (the second-last hop of the paper's paths 10/15 and 9/14).
	var viaOhio, viaSingapore bool
	for _, p := range paths {
		if p.Contains(topology.AWSOhio) {
			viaOhio = true
			if p.Hops[len(p.Hops)-2].IA != topology.AWSOhio {
				t.Errorf("Ohio path does not have Ohio as second-last hop: %v", p)
			}
		}
		if p.Contains(topology.AWSSingapore) {
			viaSingapore = true
		}
	}
	if !viaOhio || !viaSingapore {
		t.Errorf("missing detour paths: viaOhio=%v viaSingapore=%v", viaOhio, viaSingapore)
	}
}

func TestPathsNoLoopsNoDuplicates(t *testing.T) {
	c := worldCombiner(t)
	for _, dst := range c.topo.Servers() {
		paths, err := c.Paths(topology.MyAS, dst.IA)
		if err != nil {
			t.Fatalf("paths to %s: %v", dst.IA, err)
		}
		seen := map[string]bool{}
		for _, p := range paths {
			if p.HasLoop() {
				t.Errorf("loop in path to %s: %v", dst.IA, p)
			}
			fp := p.Fingerprint()
			if seen[fp] {
				t.Errorf("duplicate path to %s: %v", dst.IA, p)
			}
			seen[fp] = true
			if p.Hops[0].IA != topology.MyAS || p.Hops[len(p.Hops)-1].IA != dst.IA {
				t.Errorf("path endpoints wrong: %v", p)
			}
			if p.Hops[0].In != 0 || p.Hops[len(p.Hops)-1].Out != 0 {
				t.Errorf("terminal interfaces not zero: %v", p)
			}
			if p.MTU <= 0 {
				t.Errorf("path MTU not annotated: %v", p)
			}
		}
	}
}

func TestPathsHopContiguity(t *testing.T) {
	c := worldCombiner(t)
	paths, err := c.Paths(topology.MyAS, topology.MagdeburgAP)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		for i := 0; i+1 < len(p.Hops); i++ {
			l := c.topo.LinkBetween(p.Hops[i].IA, p.Hops[i+1].IA)
			if l == nil {
				t.Fatalf("path %v: no link between %s and %s", p, p.Hops[i].IA, p.Hops[i+1].IA)
			}
			wantOut, wantIn := l.AIf, l.BIf
			if l.A != p.Hops[i].IA {
				wantOut, wantIn = l.BIf, l.AIf
			}
			if p.Hops[i].Out != wantOut || p.Hops[i+1].In != wantIn {
				t.Errorf("path %v hop %d: interfaces %d>%d, want %d>%d",
					p, i, p.Hops[i].Out, p.Hops[i+1].In, wantOut, wantIn)
			}
		}
	}
}

func TestShortcutIntraISD(t *testing.T) {
	c := worldCombiner(t)
	// ETHZ (17-ffaa:0:1102) is on MY_AS's up path; the common-AS shortcut
	// must yield the 3-hop path MY_AS -> ETHZ-AP -> ETHZ.
	paths, err := c.Paths(topology.MyAS, addr.MustParseIA("17-ffaa:0:1102"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths to ETHZ")
	}
	if got := paths[0].NumHops(); got != 3 {
		t.Errorf("min hops to ETHZ = %d, want 3 (shortcut)", got)
	}
}

func TestReachabilityMatchesPaper(t *testing.T) {
	c := worldCombiner(t)
	servers := c.topo.Servers()
	if len(servers) != 21 {
		t.Fatalf("%d servers, want 21", len(servers))
	}
	total, within6 := 0, 0
	count := 0
	for _, s := range servers {
		min, ok := c.MinHops(topology.MyAS, s.IA)
		if !ok {
			t.Fatalf("server %s unreachable", s.IA)
		}
		total += min
		count++
		if min <= 6 {
			within6++
		}
	}
	avg := float64(total) / float64(count)
	// Paper: average path length 5.66 hops; we accept the same ballpark.
	if avg < 5.2 || avg > 6.2 {
		t.Errorf("average min path length %.2f, want within [5.2, 6.2] (paper: 5.66)", avg)
	}
	frac := float64(within6) / float64(count)
	// Paper: "about 70%% of paths can be reached within 6 hops".
	if frac < 0.55 || frac > 0.9 {
		t.Errorf("fraction reachable within 6 hops %.2f, want within [0.55, 0.90] (paper: ~0.70)", frac)
	}
}

func TestPathsErrors(t *testing.T) {
	c := worldCombiner(t)
	if _, err := c.Paths(topology.MyAS, topology.MyAS); err == nil {
		t.Error("same src/dst accepted")
	}
	if _, err := c.Paths(topology.MyAS, addr.MustParseIA("99-ff00:0:1")); err == nil {
		t.Error("unknown destination accepted")
	}
	if _, err := c.Paths(addr.MustParseIA("99-ff00:0:1"), topology.MyAS); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestISDSet(t *testing.T) {
	c := worldCombiner(t)
	paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
	if err != nil {
		t.Fatal(err)
	}
	sawDirect, sawViaEU := false, false
	for _, p := range paths {
		key := p.ISDSetKey()
		switch key {
		case "16-17":
			sawDirect = true
		case "16-17-19":
			sawViaEU = true
		}
		isds := p.ISDSet()
		for i := 1; i < len(isds); i++ {
			if isds[i] <= isds[i-1] {
				t.Errorf("ISD set not strictly sorted: %v", isds)
			}
		}
	}
	// Fig 6 groups Ireland paths into ISD sets {16,17} and {16,17,19}.
	if !sawDirect || !sawViaEU {
		t.Errorf("expected ISD sets 16-17 and 16-17-19; direct=%v viaEU=%v", sawDirect, sawViaEU)
	}
}

func TestPathStringAndFingerprint(t *testing.T) {
	c := worldCombiner(t)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	p := paths[0]
	if p.String() == "" || p.Fingerprint() == "" {
		t.Error("empty rendering")
	}
	if len(p.Fingerprint()) != 16 {
		t.Errorf("fingerprint length %d, want 16 hex chars", len(p.Fingerprint()))
	}
	q := *p
	q.Hops = append([]Hop{}, p.Hops...)
	q.Hops[1].Out++ // different interface => different fingerprint
	if q.Fingerprint() == p.Fingerprint() {
		t.Error("fingerprint ignores interfaces")
	}
}

func TestMinLatencyOrdersGeography(t *testing.T) {
	c := worldCombiner(t)
	paths, _ := c.Paths(topology.MyAS, topology.AWSIreland)
	var direct, viaSingapore *Path
	for _, p := range paths {
		if p.ISDSetKey() == "16-17" && p.NumHops() == 6 && direct == nil {
			direct = p
		}
		if p.Contains(topology.AWSSingapore) && viaSingapore == nil {
			viaSingapore = p
		}
	}
	if direct == nil || viaSingapore == nil {
		t.Fatal("expected both a direct and a Singapore-detour path")
	}
	if direct.MinLatency >= viaSingapore.MinLatency {
		t.Errorf("direct MinLatency %v >= Singapore detour %v", direct.MinLatency, viaSingapore.MinLatency)
	}
}
