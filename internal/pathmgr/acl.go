package pathmgr

import (
	"fmt"
	"strings"
)

// ACL is a SCION-style path access-control list: an ordered list of allow
// ("+") and deny ("-") hop predicates. A path is evaluated hop by hop:
// the first entry whose predicate matches any hop decides (allow keeps the
// path eligible, deny rejects it); a bare "+" or "-" entry is the default
// action terminating the list. This mirrors the path-policy ACLs of the
// scion tools and gives the user-driven exclusions a data-plane-level
// counterpart to the database-level filters of the selection engine.
type ACL struct {
	entries []aclEntry
}

type aclEntry struct {
	allow bool
	pred  *Predicate // nil for the bare default entry
}

// ParseACL parses entries such as:
//
//	"- 16-ffaa:0:1004#0"        deny anything through AWS Ohio
//	"- 16-0#0"                  deny all of ISD 16
//	"+ 17-0#0, - 0-0#0"         allow ISD 17 hops, default deny
//
// Entries are comma-separated; each is "+"/"-" optionally followed by a
// hop predicate. A trailing default is appended automatically ("+" if the
// list ends with a deny predicate, "-" if it ends with an allow), matching
// the scion ACL convention that the last entry must be a catch-all.
func ParseACL(s string) (*ACL, error) {
	parts := strings.Split(s, ",")
	acl := &ACL{}
	for _, raw := range parts {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		var allow bool
		switch raw[0] {
		case '+':
			allow = true
		case '-':
			allow = false
		default:
			return nil, fmt.Errorf("pathmgr: ACL entry %q must start with '+' or '-'", raw)
		}
		rest := strings.TrimSpace(raw[1:])
		if rest == "" {
			acl.entries = append(acl.entries, aclEntry{allow: allow})
			continue
		}
		pred, err := ParsePredicate(rest)
		if err != nil {
			return nil, fmt.Errorf("pathmgr: ACL entry %q: %w", raw, err)
		}
		acl.entries = append(acl.entries, aclEntry{allow: allow, pred: &pred})
	}
	if len(acl.entries) == 0 {
		return nil, fmt.Errorf("pathmgr: empty ACL")
	}
	// Ensure a terminating default.
	if last := acl.entries[len(acl.entries)-1]; last.pred != nil {
		acl.entries = append(acl.entries, aclEntry{allow: !last.allow})
	}
	return acl, nil
}

// String renders the ACL in its parse syntax.
func (a *ACL) String() string {
	parts := make([]string, len(a.entries))
	for i, e := range a.entries {
		sign := "-"
		if e.allow {
			sign = "+"
		}
		if e.pred == nil {
			parts[i] = sign
		} else {
			parts[i] = sign + " " + e.pred.String()
		}
	}
	return strings.Join(parts, ", ")
}

// Allow reports whether the path is permitted: every hop must be allowed
// by its first matching entry.
func (a *ACL) Allow(p *Path) bool {
	for _, h := range p.Hops {
		for _, e := range a.entries {
			if e.pred == nil || e.pred.MatchHop(h) {
				if !e.allow {
					return false
				}
				break
			}
		}
	}
	return true
}

// FilterPaths returns the paths the ACL permits, preserving order. A nil
// ACL permits everything.
func (a *ACL) FilterPaths(paths []*Path) []*Path {
	if a == nil {
		return paths
	}
	out := make([]*Path, 0, len(paths))
	for _, p := range paths {
		if a.Allow(p) {
			out = append(out, p)
		}
	}
	return out
}
