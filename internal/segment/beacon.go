// Bounded-width beacon propagation: the scalable replacement for the
// original exhaustive simple-path DFS. Each AS keeps a small beacon store
// per origin core AS (BeaconsPerOrigin entries); only retained beacons
// propagate, which bounds the frontier the way a real SCION beacon store
// does and keeps discovery polynomial at 10³–10⁴ ASes.
package segment

import (
	"sort"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/topology"
)

// halfLink is one directed traversal of a topology link: the AS it leads
// to, the egress interface on the current AS, the ingress interface on the
// next AS, and the link MTU the beacon records on entry.
type halfLink struct {
	next addr.IA
	out  addr.IfID
	in   addr.IfID
	mtu  int
}

// beaconGraph is the propagation view of a topology, built once per
// Discover call and shared read-only by all origin workers. core holds core
// links in both directions; down holds parent->child links in the beacon
// (downstream) direction only.
type beaconGraph struct {
	core map[addr.IA][]halfLink
	down map[addr.IA][]halfLink
}

func newBeaconGraph(topo *topology.Topology) *beaconGraph {
	g := &beaconGraph{
		core: make(map[addr.IA][]halfLink),
		down: make(map[addr.IA][]halfLink),
	}
	for _, l := range topo.Links() {
		switch l.Type {
		case topology.CoreLink:
			g.core[l.A] = append(g.core[l.A], halfLink{next: l.B, out: l.AIf, in: l.BIf, mtu: l.MTU})
			g.core[l.B] = append(g.core[l.B], halfLink{next: l.A, out: l.BIf, in: l.AIf, mtu: l.MTU})
		case topology.ParentChild:
			g.down[l.A] = append(g.down[l.A], halfLink{next: l.B, out: l.AIf, in: l.BIf, mtu: l.MTU})
		}
	}
	return g
}

// propagate runs bounded-width best-first beacon propagation from one
// origin AS: a level-synchronous BFS where round L extends every beacon
// retained in round L-1 by one link, and each reached AS retains at most k
// beacons per origin. Retention is best-first — shorter beacons always win
// because they arrived in an earlier round, and same-length ties are broken
// lexicographically by hop tuple — so the outcome is a total-order choice
// independent of link iteration order, map iteration order and worker
// scheduling. Beacons the store rejects never propagate, which is what
// bounds the frontier.
//
// sameISD restricts propagation to the origin's ISD (intra-ISD beaconing).
// The returned per-AS lists are sorted by (length, lexicographic entries).
func propagate(origin addr.IA, adj map[addr.IA][]halfLink, sameISD bool, maxLen, k int) map[addr.IA][][]ASEntry {
	kept := make(map[addr.IA][][]ASEntry)
	frontier := [][]ASEntry{{{IA: origin}}}
	for length := 2; length <= maxLen && len(frontier) > 0; length++ {
		// Candidate extensions this round, grouped by reached AS. touched
		// records first-arrival order so the retention loop below never
		// ranges over the map.
		cand := make(map[addr.IA][][]ASEntry)
		var touched []addr.IA
		for _, seg := range frontier {
			cur := seg[len(seg)-1]
			for _, hl := range adj[cur.IA] {
				if sameISD && hl.next.ISD != origin.ISD {
					continue
				}
				// A full store rejects every candidate this round (it only
				// holds shorter beacons from earlier rounds): skip building
				// the extension at all.
				if len(kept[hl.next]) >= k {
					continue
				}
				if entriesContain(seg, hl.next) {
					continue
				}
				ext := make([]ASEntry, len(seg)+1)
				copy(ext, seg)
				ext[len(seg)-1].Out = hl.out
				ext[len(seg)] = ASEntry{IA: hl.next, In: hl.in, MTU: hl.mtu}
				if len(cand[hl.next]) == 0 {
					touched = append(touched, hl.next)
				}
				cand[hl.next] = append(cand[hl.next], ext)
			}
		}
		var next [][]ASEntry
		for _, ia := range touched {
			room := k - len(kept[ia])
			if room <= 0 {
				continue
			}
			c := cand[ia]
			sort.Slice(c, func(i, j int) bool { return entriesLess(c[i], c[j]) })
			if len(c) > room {
				c = c[:room]
			}
			kept[ia] = append(kept[ia], c...)
			next = append(next, c...)
		}
		frontier = next
	}
	return kept
}

// entriesContain reports whether the beacon already traverses ia (the
// simple-path check; beacons are short, so a linear scan beats a map).
func entriesContain(seg []ASEntry, ia addr.IA) bool {
	for _, e := range seg {
		if e.IA == ia {
			return true
		}
	}
	return false
}

// entriesLess orders entry lists lexicographically by (IA, In, Out) per
// position, shorter prefix first. Two distinct beacons always differ in
// some position (interface ids are unique per AS), so this is a total
// order — the deterministic retention tie-break.
func entriesLess(a, b []ASEntry) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		x, y := a[i], b[i]
		if x.IA != y.IA {
			if x.IA.ISD != y.IA.ISD {
				return x.IA.ISD < y.IA.ISD
			}
			return x.IA.AS < y.IA.AS
		}
		if x.In != y.In {
			return x.In < y.In
		}
		if x.Out != y.Out {
			return x.Out < y.Out
		}
	}
	return len(a) < len(b)
}

// sortSegments orders segments by length, then lexicographically by
// entries: the canonical registry order (and the retention tie-break the
// MaxSegmentsPerPair truncation applies).
func sortSegments(segs []*Segment) {
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Len() != segs[j].Len() {
			return segs[i].Len() < segs[j].Len()
		}
		return entriesLess(segs[i].Entries, segs[j].Entries)
	})
}
