package segment

// The original exhaustive simple-path DFS, kept as a test-local oracle: the
// bounded-width propagation in beacon.go must discover exactly the same
// segment sets whenever its beacon stores are wide enough that nothing is
// pruned mid-flight.

import (
	"reflect"
	"testing"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
	"github.com/upin/scionpath/internal/topology"
)

func oracleDiscover(topo *topology.Topology, opts Options) *Registry {
	opts = opts.withDefaults()
	reg := &Registry{
		DownByLeaf: make(map[addr.IA][]*Segment),
		CoreByPair: make(map[addr.IA]map[addr.IA][]*Segment),
	}
	cloneEntries := func(in []ASEntry) []ASEntry {
		out := make([]ASEntry, len(in))
		copy(out, in)
		return out
	}
	registerCore := func(origin, terminal addr.IA, entries []ASEntry) {
		m := reg.CoreByPair[origin]
		if m == nil {
			m = make(map[addr.IA][]*Segment)
			reg.CoreByPair[origin] = m
		}
		m[terminal] = append(m[terminal], &Segment{Type: CoreSeg, Entries: entries})
	}
	for _, origin := range topo.CoreASes(0) {
		var walk func(seg []ASEntry, seen map[addr.IA]bool)
		walk = func(seg []ASEntry, seen map[addr.IA]bool) {
			cur := seg[len(seg)-1].IA
			if len(seg) > 1 {
				registerCore(origin.IA, cur, cloneEntries(seg))
			}
			if len(seg) >= opts.MaxCoreLen {
				return
			}
			for _, l := range topo.LinksOf(cur) {
				if l.Type != topology.CoreLink {
					continue
				}
				next, outIf, inIf := l.B, l.AIf, l.BIf
				if l.B == cur {
					next, outIf, inIf = l.A, l.BIf, l.AIf
				}
				if seen[next] {
					continue
				}
				seen[next] = true
				seg[len(seg)-1].Out = outIf
				seg = append(seg, ASEntry{IA: next, In: inIf, MTU: l.MTU})
				walk(seg, seen)
				seg = seg[:len(seg)-1]
				seg[len(seg)-1].Out = 0
				delete(seen, next)
			}
		}
		walk([]ASEntry{{IA: origin.IA}}, map[addr.IA]bool{origin.IA: true})
	}
	for _, m := range reg.CoreByPair {
		for dst, segs := range m {
			sortSegments(segs)
			if len(segs) > opts.MaxSegmentsPerPair {
				m[dst] = segs[:opts.MaxSegmentsPerPair]
			}
		}
	}
	for _, origin := range topo.CoreASes(0) {
		var walk func(seg []ASEntry, seen map[addr.IA]bool)
		walk = func(seg []ASEntry, seen map[addr.IA]bool) {
			cur := seg[len(seg)-1].IA
			if len(seg) > 1 {
				reg.DownByLeaf[cur] = append(reg.DownByLeaf[cur], &Segment{
					Type: Down, Entries: cloneEntries(seg),
				})
			}
			if len(seg) >= opts.MaxDownLen {
				return
			}
			for _, l := range topo.LinksOf(cur) {
				if l.Type != topology.ParentChild || l.A != cur {
					continue
				}
				if l.B.ISD != origin.IA.ISD || seen[l.B] {
					continue
				}
				seen[l.B] = true
				seg[len(seg)-1].Out = l.AIf
				seg = append(seg, ASEntry{IA: l.B, In: l.BIf, MTU: l.MTU})
				walk(seg, seen)
				seg = seg[:len(seg)-1]
				seg[len(seg)-1].Out = 0
				delete(seen, l.B)
			}
		}
		walk([]ASEntry{{IA: origin.IA}}, map[addr.IA]bool{origin.IA: true})
	}
	for _, segs := range reg.DownByLeaf {
		sortSegments(segs)
	}
	return reg
}

// oracleWorlds are the topologies the differential tests sweep: the paper's
// replica plus generated worlds with multi-core ISDs and dense meshes.
func oracleWorlds(t *testing.T) map[string]*topology.Topology {
	t.Helper()
	worlds := map[string]*topology.Topology{
		"default": topology.DefaultWorld(),
	}
	specs := []topology.GenerateSpec{
		{Seed: 1, ISDs: 4, MaxNonCorePerISD: 6, ExtraCoreLinks: 3},
		{Seed: 2, ISDs: 5, CoresPerISD: 3, NonCorePerISD: 10, CoreDegree: 4},
		{Seed: 3, ISDs: 2, CoresPerISD: 2, NonCorePerISD: 14, MaxChildren: 3, MultiParentProb: 0.6},
	}
	for _, spec := range specs {
		topo, err := topology.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		worlds[topo.ASes()[0].IA.String()] = topo
	}
	return worlds
}

// TestDiscoverMatchesExhaustive checks the bounded propagation against the
// exhaustive DFS with retention wide open: with nothing to prune, the two
// must produce identical registries.
func TestDiscoverMatchesExhaustive(t *testing.T) {
	wide := Options{MaxSegmentsPerPair: 1 << 20, BeaconsPerOrigin: 1 << 20}
	for name, topo := range oracleWorlds(t) {
		got := Discover(topo, wide)
		want := oracleDiscover(topo, wide)
		if !reflect.DeepEqual(got.CoreByPair, want.CoreByPair) {
			t.Errorf("%s: core segments diverge from exhaustive oracle", name)
		}
		if !reflect.DeepEqual(got.DownByLeaf, want.DownByLeaf) {
			t.Errorf("%s: down segments diverge from exhaustive oracle", name)
		}
	}
}

// TestDiscoverDefaultsMatchOracle runs both at the default retention
// bounds: on these worlds no beacon store overflows mid-propagation, so
// bounded discovery must still equal the truncated exhaustive result.
func TestDiscoverDefaultsMatchOracle(t *testing.T) {
	for name, topo := range oracleWorlds(t) {
		got := Discover(topo, Options{})
		want := oracleDiscover(topo, Options{})
		if !reflect.DeepEqual(got.CoreByPair, want.CoreByPair) {
			t.Errorf("%s: core segments diverge at default bounds", name)
		}
		if !reflect.DeepEqual(got.DownByLeaf, want.DownByLeaf) {
			t.Errorf("%s: down segments diverge at default bounds", name)
		}
	}
}

// TestDiscoverWorkerInvariance is the acceptance check for parallel
// beaconing: any worker count must produce a bit-identical registry.
func TestDiscoverWorkerInvariance(t *testing.T) {
	topo, err := topology.Generate(topology.GenerateSpec{
		Seed: 11, ISDs: 6, CoresPerISD: 2, NonCorePerISD: 12, CoreDegree: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Discover(topo, Options{Workers: 1})
	for _, workers := range []int{2, 3, 8, 64} {
		got := Discover(topo, Options{Workers: workers})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("registry differs between 1 and %d workers", workers)
		}
	}
}

// TestCoreRetentionTieBreak is the regression test for the satellite fix:
// when more equal-length core segments exist than MaxSegmentsPerPair keeps,
// the survivors must be the lexicographically smallest hop tuples — not
// whatever discovery order produced (the old behaviour).
func TestCoreRetentionTieBreak(t *testing.T) {
	// Four fully meshed cores: A->B has one 2-AS, two 3-AS and two 4-AS
	// simple paths; MaxSegmentsPerPair 2 must keep the 2-AS segment plus
	// the lexicographically smaller 3-AS one.
	topo := topology.New()
	var cores []addr.IA
	for i := 0; i < 4; i++ {
		ia := addr.IA{ISD: 1, AS: addr.AS(0x10000 + i)}
		topo.MustAddAS(&topology.AS{IA: ia, Name: ia.String(), Type: topology.Core, Site: geo.Zurich})
		cores = append(cores, ia)
	}
	for i := 0; i < len(cores); i++ {
		for j := i + 1; j < len(cores); j++ {
			topo.MustConnect(topology.CoreLink, cores[i], cores[j], topology.LinkSpec{})
		}
	}

	full := Discover(topo, Options{MaxSegmentsPerPair: 1 << 20})
	trimmed := Discover(topo, Options{MaxSegmentsPerPair: 2})
	for _, src := range cores {
		for _, dst := range cores {
			if src == dst {
				continue
			}
			all := full.CoreSegments(src, dst)
			want := all
			if len(want) > 2 {
				want = want[:2]
			}
			got := trimmed.CoreSegments(src, dst)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s->%s: retention kept %v, want lexicographic prefix %v", src, dst, got, want)
			}
		}
	}
	// The survivors are a deterministic function of the topology alone:
	// re-discovery (any worker count) reproduces them bit-identically.
	again := Discover(topo, Options{MaxSegmentsPerPair: 2, Workers: 3})
	if !reflect.DeepEqual(trimmed, again) {
		t.Fatal("retention not reproducible across runs/worker counts")
	}
}
