package segment

import (
	"testing"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/geo"
	"github.com/upin/scionpath/internal/topology"
)

// miniWorld builds a 2-ISD topology:
//
//	ISD 1: core C1; C1->A->B, C1->B (two down segments to B)
//	ISD 2: core C2; C2->D
//	core mesh: C1--C2
func miniWorld(t *testing.T) *topology.Topology {
	t.Helper()
	topo := topology.New()
	add := func(ia string, typ topology.ASType) {
		topo.MustAddAS(&topology.AS{
			IA: addr.MustParseIA(ia), Name: ia, Type: typ, Site: geo.Zurich,
		})
	}
	add("1-ff00:0:110", topology.Core)    // C1
	add("1-ff00:0:111", topology.NonCore) // A
	add("1-ff00:0:112", topology.NonCore) // B
	add("2-ff00:0:210", topology.Core)    // C2
	add("2-ff00:0:211", topology.NonCore) // D
	ia := addr.MustParseIA
	topo.MustConnect(topology.ParentChild, ia("1-ff00:0:110"), ia("1-ff00:0:111"), topology.LinkSpec{})
	topo.MustConnect(topology.ParentChild, ia("1-ff00:0:111"), ia("1-ff00:0:112"), topology.LinkSpec{})
	topo.MustConnect(topology.ParentChild, ia("1-ff00:0:110"), ia("1-ff00:0:112"), topology.LinkSpec{})
	topo.MustConnect(topology.CoreLink, ia("1-ff00:0:110"), ia("2-ff00:0:210"), topology.LinkSpec{})
	topo.MustConnect(topology.ParentChild, ia("2-ff00:0:210"), ia("2-ff00:0:211"), topology.LinkSpec{})
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestDiscoverDownSegments(t *testing.T) {
	reg := Discover(miniWorld(t), Options{})
	b := addr.MustParseIA("1-ff00:0:112")
	segs := reg.DownSegments(b)
	if len(segs) != 2 {
		t.Fatalf("B has %d down segments, want 2", len(segs))
	}
	// Sorted by length: direct (2 entries) then via A (3 entries).
	if segs[0].Len() != 2 || segs[1].Len() != 3 {
		t.Errorf("segment lengths %d,%d want 2,3", segs[0].Len(), segs[1].Len())
	}
	for _, s := range segs {
		if s.Type != Down {
			t.Errorf("segment type %v, want down", s.Type)
		}
		if s.First() != addr.MustParseIA("1-ff00:0:110") {
			t.Errorf("down segment origin %s, want core C1", s.First())
		}
		if s.Last() != b {
			t.Errorf("down segment terminal %s, want B", s.Last())
		}
		if s.ContainsLoop() {
			t.Errorf("segment %v has a loop", s)
		}
	}
}

func TestDiscoverCoreSegments(t *testing.T) {
	reg := Discover(miniWorld(t), Options{})
	c1, c2 := addr.MustParseIA("1-ff00:0:110"), addr.MustParseIA("2-ff00:0:210")
	fwd := reg.CoreSegments(c1, c2)
	rev := reg.CoreSegments(c2, c1)
	if len(fwd) != 1 || len(rev) != 1 {
		t.Fatalf("core segments fwd=%d rev=%d, want 1 each", len(fwd), len(rev))
	}
	if fwd[0].First() != c1 || fwd[0].Last() != c2 {
		t.Errorf("forward core segment endpoints wrong: %v", fwd[0])
	}
	if reg.CoreSegments(c1, c1) != nil {
		t.Error("self core segment registered")
	}
}

func TestSegmentInterfaceConsistency(t *testing.T) {
	topo := miniWorld(t)
	reg := Discover(topo, Options{})
	for _, segs := range reg.DownByLeaf {
		for _, s := range segs {
			checkInterfaces(t, topo, s)
		}
	}
	for _, m := range reg.CoreByPair {
		for _, segs := range m {
			for _, s := range segs {
				checkInterfaces(t, topo, s)
			}
		}
	}
}

// checkInterfaces verifies that consecutive entries are joined by a real
// link and the recorded interface ids belong to that link.
func checkInterfaces(t *testing.T, topo *topology.Topology, s *Segment) {
	t.Helper()
	if s.Entries[0].In != 0 {
		t.Errorf("%v: origin has nonzero ingress", s)
	}
	if s.Entries[len(s.Entries)-1].Out != 0 {
		t.Errorf("%v: terminal has nonzero egress", s)
	}
	for i := 0; i+1 < len(s.Entries); i++ {
		a, b := s.Entries[i], s.Entries[i+1]
		l := topo.LinkBetween(a.IA, b.IA)
		if l == nil {
			t.Fatalf("%v: no link %s--%s", s, a.IA, b.IA)
		}
		wantOut, wantIn := l.AIf, l.BIf
		if l.A != a.IA {
			wantOut, wantIn = l.BIf, l.AIf
		}
		if a.Out != wantOut || b.In != wantIn {
			t.Errorf("%v: hop %s->%s interfaces %d->%d, want %d->%d",
				s, a.IA, b.IA, a.Out, b.In, wantOut, wantIn)
		}
	}
}

func TestDiscoverRespectsLimits(t *testing.T) {
	topo := miniWorld(t)
	reg := Discover(topo, Options{MaxDownLen: 2, MaxCoreLen: 2, MaxSegmentsPerPair: 1})
	b := addr.MustParseIA("1-ff00:0:112")
	for _, s := range reg.DownSegments(b) {
		if s.Len() > 2 {
			t.Errorf("down segment of length %d despite MaxDownLen=2", s.Len())
		}
	}
	// Only the direct segment should remain.
	if len(reg.DownSegments(b)) != 1 {
		t.Errorf("got %d down segments, want 1 under the limit", len(reg.DownSegments(b)))
	}
}

func TestUpSegmentsAliasDownSegments(t *testing.T) {
	reg := Discover(miniWorld(t), Options{})
	b := addr.MustParseIA("1-ff00:0:112")
	up, down := reg.UpSegments(b), reg.DownSegments(b)
	if len(up) != len(down) {
		t.Fatalf("up/down segment counts differ: %d vs %d", len(up), len(down))
	}
}

func TestSegmentMTU(t *testing.T) {
	s := &Segment{Type: Down, Entries: []ASEntry{
		{IA: addr.MustParseIA("1-ff00:0:110")},
		{IA: addr.MustParseIA("1-ff00:0:111"), MTU: 1500},
		{IA: addr.MustParseIA("1-ff00:0:112"), MTU: 1400},
	}}
	if got := s.MTU(); got != 1400 {
		t.Errorf("MTU = %d, want 1400", got)
	}
	single := &Segment{Type: Down, Entries: []ASEntry{{IA: addr.MustParseIA("1-ff00:0:110")}}}
	if got := single.MTU(); got != 0 {
		t.Errorf("single-AS MTU = %d, want 0", got)
	}
}

func TestTypeString(t *testing.T) {
	if Up.String() != "up" || CoreSeg.String() != "core" || Down.String() != "down" {
		t.Error("Type strings wrong")
	}
	if Type(9).String() == "" {
		t.Error("unknown type should render a marker")
	}
}

func TestDiscoverWorldNoLoopsAndBounded(t *testing.T) {
	topo := topology.DefaultWorld()
	reg := Discover(topo, Options{})
	total := 0
	for leaf, segs := range reg.DownByLeaf {
		for _, s := range segs {
			total++
			if s.ContainsLoop() {
				t.Errorf("down segment to %s loops: %v", leaf, s)
			}
			if topo.AS(s.First()).Type != topology.Core {
				t.Errorf("down segment to %s does not start at a core AS: %v", leaf, s)
			}
			if s.First().ISD != s.Last().ISD {
				t.Errorf("down segment crosses ISDs: %v", s)
			}
		}
	}
	if total == 0 {
		t.Fatal("no down segments discovered in world topology")
	}
	for src, m := range reg.CoreByPair {
		for dst, segs := range m {
			if len(segs) > 8 {
				t.Errorf("core pair %s->%s holds %d segments, want <= 8", src, dst, len(segs))
			}
			for _, s := range segs {
				if s.ContainsLoop() {
					t.Errorf("core segment loops: %v", s)
				}
			}
		}
	}
	// MY_AS must have at least two up segments (via ETHZ and via SWITCH).
	if got := len(reg.UpSegments(topology.MyAS)); got < 2 {
		t.Errorf("MY_AS has %d up segments, want >= 2", got)
	}
}
