// Package segment implements SCION path-segment construction. Core ASes
// originate path-construction beacons (PCBs); beacons propagate over core
// links (core beaconing) and down ISD-internal parent-child links (intra-ISD
// beaconing). The resulting up-, core- and down-segments are what the path
// manager combines into end-to-end paths, mirroring how SCIONLab offers "a
// variety of paths between different ASes to support multipath operations"
// (paper §3.1).
package segment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/topology"
)

// Type classifies a segment by its role in path construction.
type Type int

const (
	// Up segments lead from a non-core AS up to a core AS of its ISD.
	Up Type = iota
	// Core segments connect two core ASes (possibly across ISDs).
	CoreSeg
	// Down segments lead from a core AS down to a non-core AS.
	Down
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Up:
		return "up"
	case CoreSeg:
		return "core"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ASEntry is one AS traversed by a beacon. Interfaces are relative to beacon
// travel direction: In is the interface the beacon entered through (0 at the
// origin), Out the interface it left through (0 at the terminal AS).
type ASEntry struct {
	IA  addr.IA
	In  addr.IfID
	Out addr.IfID
	MTU int // MTU of the link the beacon entered through (0 at origin)
}

// Segment is a registered path segment. Entries are ordered in beacon travel
// direction: a core segment from its origin core AS to the registering core
// AS; a down segment from the core AS to the leaf. Up segments are down
// segments interpreted in reverse (leaf to core), as in SCION.
type Segment struct {
	Type    Type
	Entries []ASEntry
}

// First returns the origin AS (a core AS for core/down segments).
func (s *Segment) First() addr.IA { return s.Entries[0].IA }

// Last returns the terminal AS.
func (s *Segment) Last() addr.IA { return s.Entries[len(s.Entries)-1].IA }

// Len returns the number of AS entries.
func (s *Segment) Len() int { return len(s.Entries) }

// MTU returns the minimum MTU along the segment (0 when single-AS).
func (s *Segment) MTU() int {
	mtu := 0
	for _, e := range s.Entries[1:] {
		if mtu == 0 || (e.MTU > 0 && e.MTU < mtu) {
			mtu = e.MTU
		}
	}
	return mtu
}

// ContainsLoop reports whether any AS repeats within the segment.
func (s *Segment) ContainsLoop() bool {
	seen := make(map[addr.IA]bool, len(s.Entries))
	for _, e := range s.Entries {
		if seen[e.IA] {
			return true
		}
		seen[e.IA] = true
	}
	return false
}

// String renders the segment as "type: AS>AS>AS".
func (s *Segment) String() string {
	parts := make([]string, len(s.Entries))
	for i, e := range s.Entries {
		parts[i] = e.IA.String()
	}
	return s.Type.String() + ": " + strings.Join(parts, ">")
}

// Registry holds the segments discovered by beaconing, indexed the way the
// path manager consumes them.
type Registry struct {
	// DownByLeaf maps a non-core AS to the down segments terminating at it.
	// The same segments serve as the AS's up segments (reversed).
	DownByLeaf map[addr.IA][]*Segment
	// CoreByPair maps origin core AS then terminal core AS to core segments
	// usable in the origin->terminal direction.
	CoreByPair map[addr.IA]map[addr.IA][]*Segment
}

// Options bounds beaconing. Zero values select the defaults.
type Options struct {
	// MaxCoreLen caps the number of ASes in a core segment.
	MaxCoreLen int
	// MaxDownLen caps the number of ASes in a down segment.
	MaxDownLen int
	// MaxSegmentsPerPair caps how many core segments are kept per ordered
	// core-AS pair (shortest first, length ties broken lexicographically
	// by hop tuple), like a registry retention policy.
	MaxSegmentsPerPair int
	// BeaconsPerOrigin caps how many beacons each AS's beacon store
	// retains — and therefore propagates — per origin core AS during
	// beaconing (see propagate). Retention is best-first: shortest
	// beacons win, same-length ties break lexicographically by hop tuple.
	BeaconsPerOrigin int
	// Workers bounds how many origin core ASes beacon concurrently. The
	// merge is deterministic, so any value yields a bit-identical
	// registry; 0 means runtime.GOMAXPROCS(0).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxCoreLen == 0 {
		o.MaxCoreLen = 5
	}
	if o.MaxDownLen == 0 {
		o.MaxDownLen = 6
	}
	if o.MaxSegmentsPerPair == 0 {
		o.MaxSegmentsPerPair = 8
	}
	if o.BeaconsPerOrigin == 0 {
		o.BeaconsPerOrigin = 8
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Discover runs core and intra-ISD beaconing over the topology and returns
// the populated registry. Beaconing is bounded-width best-first propagation
// (see beacon.go) parallelised across origin core ASes; per-origin results
// land in indexed slots and merge sequentially in sorted-origin order, so
// the registry is bit-identical for any Workers value.
//
// A core segment registered at a terminal AS, originated by `origin`,
// supports forwarding terminal->origin in SCION; for simplicity our links
// are symmetric, so it is registered for the origin->terminal direction and
// the reverse direction is discovered by the beacon originated at the other
// end.
func Discover(topo *topology.Topology, opts Options) *Registry {
	opts = opts.withDefaults()
	origins := topo.CoreASes(0)
	g := newBeaconGraph(topo)

	// originSegs is one origin's beaconing output: segments that reached
	// each core AS (core beaconing) and each leaf (intra-ISD beaconing).
	type originSegs struct {
		core map[addr.IA][][]ASEntry
		down map[addr.IA][][]ASEntry
	}
	results := make([]originSegs, len(origins))
	workers := opts.Workers
	if workers > len(origins) {
		workers = len(origins)
	}
	if workers < 1 {
		workers = 1
	}
	var nextOrigin atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextOrigin.Add(1)) - 1
				if i >= len(origins) {
					return
				}
				o := origins[i].IA
				results[i] = originSegs{
					core: propagate(o, g.core, false, opts.MaxCoreLen, opts.BeaconsPerOrigin),
					down: propagate(o, g.down, true, opts.MaxDownLen, opts.BeaconsPerOrigin),
				}
			}
		}()
	}
	wg.Wait()

	reg := &Registry{
		DownByLeaf: make(map[addr.IA][]*Segment),
		CoreByPair: make(map[addr.IA]map[addr.IA][]*Segment),
	}
	for i, origin := range origins {
		res := results[i]
		if len(res.core) > 0 {
			m := make(map[addr.IA][]*Segment, len(res.core))
			for terminal, lists := range res.core {
				// Retention: the MaxSegmentsPerPair shortest segments per
				// pair; propagate returns lists already sorted by (length,
				// lexicographic hop tuple), so truncation is deterministic.
				if len(lists) > opts.MaxSegmentsPerPair {
					lists = lists[:opts.MaxSegmentsPerPair]
				}
				segs := make([]*Segment, len(lists))
				for j, e := range lists {
					segs[j] = &Segment{Type: CoreSeg, Entries: e}
				}
				m[terminal] = segs
			}
			reg.CoreByPair[origin.IA] = m
		}
		for leaf, lists := range res.down {
			for _, e := range lists {
				reg.DownByLeaf[leaf] = append(reg.DownByLeaf[leaf], &Segment{Type: Down, Entries: e})
			}
		}
	}
	// Per-leaf down lists interleave the origins; restore the canonical
	// (length, lexicographic) registry order.
	for _, segs := range reg.DownByLeaf {
		sortSegments(segs)
	}
	return reg
}

// UpSegments returns the up segments of a non-core AS: its down segments,
// to be traversed in reverse. The caller must not mutate the result.
func (r *Registry) UpSegments(ia addr.IA) []*Segment { return r.DownByLeaf[ia] }

// DownSegments returns the down segments terminating at a non-core AS.
func (r *Registry) DownSegments(ia addr.IA) []*Segment { return r.DownByLeaf[ia] }

// CoreSegments returns core segments from src core AS to dst core AS.
func (r *Registry) CoreSegments(src, dst addr.IA) []*Segment {
	if m := r.CoreByPair[src]; m != nil {
		return m[dst]
	}
	return nil
}
