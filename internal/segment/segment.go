// Package segment implements SCION path-segment construction. Core ASes
// originate path-construction beacons (PCBs); beacons propagate over core
// links (core beaconing) and down ISD-internal parent-child links (intra-ISD
// beaconing). The resulting up-, core- and down-segments are what the path
// manager combines into end-to-end paths, mirroring how SCIONLab offers "a
// variety of paths between different ASes to support multipath operations"
// (paper §3.1).
package segment

import (
	"fmt"
	"strings"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/topology"
)

// Type classifies a segment by its role in path construction.
type Type int

const (
	// Up segments lead from a non-core AS up to a core AS of its ISD.
	Up Type = iota
	// Core segments connect two core ASes (possibly across ISDs).
	CoreSeg
	// Down segments lead from a core AS down to a non-core AS.
	Down
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Up:
		return "up"
	case CoreSeg:
		return "core"
	case Down:
		return "down"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ASEntry is one AS traversed by a beacon. Interfaces are relative to beacon
// travel direction: In is the interface the beacon entered through (0 at the
// origin), Out the interface it left through (0 at the terminal AS).
type ASEntry struct {
	IA  addr.IA
	In  addr.IfID
	Out addr.IfID
	MTU int // MTU of the link the beacon entered through (0 at origin)
}

// Segment is a registered path segment. Entries are ordered in beacon travel
// direction: a core segment from its origin core AS to the registering core
// AS; a down segment from the core AS to the leaf. Up segments are down
// segments interpreted in reverse (leaf to core), as in SCION.
type Segment struct {
	Type    Type
	Entries []ASEntry
}

// First returns the origin AS (a core AS for core/down segments).
func (s *Segment) First() addr.IA { return s.Entries[0].IA }

// Last returns the terminal AS.
func (s *Segment) Last() addr.IA { return s.Entries[len(s.Entries)-1].IA }

// Len returns the number of AS entries.
func (s *Segment) Len() int { return len(s.Entries) }

// MTU returns the minimum MTU along the segment (0 when single-AS).
func (s *Segment) MTU() int {
	mtu := 0
	for _, e := range s.Entries[1:] {
		if mtu == 0 || (e.MTU > 0 && e.MTU < mtu) {
			mtu = e.MTU
		}
	}
	return mtu
}

// ContainsLoop reports whether any AS repeats within the segment.
func (s *Segment) ContainsLoop() bool {
	seen := make(map[addr.IA]bool, len(s.Entries))
	for _, e := range s.Entries {
		if seen[e.IA] {
			return true
		}
		seen[e.IA] = true
	}
	return false
}

// String renders the segment as "type: AS>AS>AS".
func (s *Segment) String() string {
	parts := make([]string, len(s.Entries))
	for i, e := range s.Entries {
		parts[i] = e.IA.String()
	}
	return s.Type.String() + ": " + strings.Join(parts, ">")
}

// Registry holds the segments discovered by beaconing, indexed the way the
// path manager consumes them.
type Registry struct {
	// DownByLeaf maps a non-core AS to the down segments terminating at it.
	// The same segments serve as the AS's up segments (reversed).
	DownByLeaf map[addr.IA][]*Segment
	// CoreByPair maps origin core AS then terminal core AS to core segments
	// usable in the origin->terminal direction.
	CoreByPair map[addr.IA]map[addr.IA][]*Segment
}

// Options bounds beaconing. Zero values select the defaults.
type Options struct {
	// MaxCoreLen caps the number of ASes in a core segment.
	MaxCoreLen int
	// MaxDownLen caps the number of ASes in a down segment.
	MaxDownLen int
	// MaxSegmentsPerPair caps how many core segments are kept per ordered
	// core-AS pair (shortest first), like a registry retention policy.
	MaxSegmentsPerPair int
}

func (o Options) withDefaults() Options {
	if o.MaxCoreLen == 0 {
		o.MaxCoreLen = 5
	}
	if o.MaxDownLen == 0 {
		o.MaxDownLen = 6
	}
	if o.MaxSegmentsPerPair == 0 {
		o.MaxSegmentsPerPair = 8
	}
	return o
}

// Discover runs core and intra-ISD beaconing over the topology and returns
// the populated registry.
func Discover(topo *topology.Topology, opts Options) *Registry {
	opts = opts.withDefaults()
	reg := &Registry{
		DownByLeaf: make(map[addr.IA][]*Segment),
		CoreByPair: make(map[addr.IA]map[addr.IA][]*Segment),
	}
	coreBeaconing(topo, opts, reg)
	intraISDBeaconing(topo, opts, reg)
	return reg
}

// coreBeaconing enumerates simple paths over core links from every core AS,
// registering a core segment at every core AS reached.
func coreBeaconing(topo *topology.Topology, opts Options, reg *Registry) {
	for _, origin := range topo.CoreASes(0) {
		var walk func(seg []ASEntry, seen map[addr.IA]bool)
		walk = func(seg []ASEntry, seen map[addr.IA]bool) {
			cur := seg[len(seg)-1].IA
			if len(seg) > 1 {
				registerCore(reg, origin.IA, cur, cloneEntries(seg), opts)
			}
			if len(seg) >= opts.MaxCoreLen {
				return
			}
			for _, l := range topo.LinksOf(cur) {
				if l.Type != topology.CoreLink {
					continue
				}
				next, outIf, inIf := l.B, l.AIf, l.BIf
				if l.B == cur {
					next, outIf, inIf = l.A, l.BIf, l.AIf
				}
				if seen[next] {
					continue
				}
				seen[next] = true
				seg[len(seg)-1].Out = outIf
				seg = append(seg, ASEntry{IA: next, In: inIf, MTU: l.MTU})
				walk(seg, seen)
				seg = seg[:len(seg)-1]
				seg[len(seg)-1].Out = 0
				delete(seen, next)
			}
		}
		walk([]ASEntry{{IA: origin.IA}}, map[addr.IA]bool{origin.IA: true})
	}
	// Retention: keep the shortest MaxSegmentsPerPair segments per pair.
	for src, m := range reg.CoreByPair {
		for dst, segs := range m {
			sortSegsByLen(segs)
			if len(segs) > opts.MaxSegmentsPerPair {
				m[dst] = segs[:opts.MaxSegmentsPerPair]
			}
			_ = src
		}
	}
}

// intraISDBeaconing propagates beacons from each ISD's core ASes along
// parent->child links, registering down segments at every AS reached.
func intraISDBeaconing(topo *topology.Topology, opts Options, reg *Registry) {
	for _, origin := range topo.CoreASes(0) {
		var walk func(seg []ASEntry, seen map[addr.IA]bool)
		walk = func(seg []ASEntry, seen map[addr.IA]bool) {
			cur := seg[len(seg)-1].IA
			if len(seg) > 1 {
				leaf := cur
				reg.DownByLeaf[leaf] = append(reg.DownByLeaf[leaf], &Segment{
					Type: Down, Entries: cloneEntries(seg),
				})
			}
			if len(seg) >= opts.MaxDownLen {
				return
			}
			for _, l := range topo.LinksOf(cur) {
				// Follow only parent->child direction within the origin ISD.
				if l.Type != topology.ParentChild || l.A != cur {
					continue
				}
				if l.B.ISD != origin.IA.ISD || seen[l.B] {
					continue
				}
				seen[l.B] = true
				seg[len(seg)-1].Out = l.AIf
				seg = append(seg, ASEntry{IA: l.B, In: l.BIf, MTU: l.MTU})
				walk(seg, seen)
				seg = seg[:len(seg)-1]
				seg[len(seg)-1].Out = 0
				delete(seen, l.B)
			}
		}
		walk([]ASEntry{{IA: origin.IA}}, map[addr.IA]bool{origin.IA: true})
	}
	for _, segs := range reg.DownByLeaf {
		sortSegsByLen(segs)
	}
}

func registerCore(reg *Registry, origin, terminal addr.IA, entries []ASEntry, opts Options) {
	// A core segment registered at `terminal`, originated by `origin`,
	// supports forwarding terminal->origin in SCION; for simplicity our
	// links are symmetric, so we register it for the origin->terminal
	// direction and the reverse direction is discovered by the beacon
	// originated at the other end.
	m := reg.CoreByPair[origin]
	if m == nil {
		m = make(map[addr.IA][]*Segment)
		reg.CoreByPair[origin] = m
	}
	m[terminal] = append(m[terminal], &Segment{Type: CoreSeg, Entries: entries})
}

// UpSegments returns the up segments of a non-core AS: its down segments,
// to be traversed in reverse. The caller must not mutate the result.
func (r *Registry) UpSegments(ia addr.IA) []*Segment { return r.DownByLeaf[ia] }

// DownSegments returns the down segments terminating at a non-core AS.
func (r *Registry) DownSegments(ia addr.IA) []*Segment { return r.DownByLeaf[ia] }

// CoreSegments returns core segments from src core AS to dst core AS.
func (r *Registry) CoreSegments(src, dst addr.IA) []*Segment {
	if m := r.CoreByPair[src]; m != nil {
		return m[dst]
	}
	return nil
}

func cloneEntries(in []ASEntry) []ASEntry {
	out := make([]ASEntry, len(in))
	copy(out, in)
	return out
}

func sortSegsByLen(segs []*Segment) {
	// Insertion sort: segment lists are short and mostly ordered.
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].Len() < segs[j-1].Len(); j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}
