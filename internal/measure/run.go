package measure

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/bwtest"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
)

// RunOpts mirrors the test_suite.sh command line (§5.1) plus the
// measurement parameters of §5.3.
type RunOpts struct {
	// Iterations is the mandatory <iterations> argument: how many times
	// each path is tested.
	Iterations int
	// Skip bypasses paths collection (--skip), meaningful "only if paths
	// have already been collected and have not changed".
	Skip bool
	// SomeOnly constrains execution to the first destination (--some_only).
	SomeOnly bool
	// ServerIDs optionally restricts the run to specific destinations
	// (the paper's 5-destination focus subset). Empty means all.
	ServerIDs []int

	// PingCount/PingInterval are the scion ping parameters (30 / 0.1 s).
	PingCount    int
	PingInterval time.Duration
	// BwDuration and BwTargetBps parameterise the bwtester runs
	// ("3,64,?,12Mbps" and "3,MTU,?,12Mbps" by default).
	BwDuration  time.Duration
	BwTargetBps float64
	// SkipBandwidth runs only the latency/loss measurement (used by the
	// loss experiment to keep the timeline dense).
	SkipBandwidth bool

	Collect CollectOpts
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Iterations == 0 {
		o.Iterations = 1
	}
	if o.PingCount == 0 {
		o.PingCount = 30
	}
	if o.PingInterval == 0 {
		o.PingInterval = 100 * time.Millisecond
	}
	if o.BwDuration == 0 {
		o.BwDuration = 3 * time.Second
	}
	if o.BwTargetBps == 0 {
		o.BwTargetBps = 12e6
	}
	return o
}

// RunReport summarises a test-suite run.
type RunReport struct {
	Iterations   int
	Destinations int
	PathsTested  int
	StatsStored  int
	// Failures counts measurements that errored; the suite continues past
	// them (fault tolerance, §4.1.2).
	Failures int
	// UnresolvedPaths counts stored paths whose hop-predicate sequence no
	// longer resolves to a live path.
	UnresolvedPaths int
}

// Suite bundles what a run needs.
type Suite struct {
	DB     *docdb.DB
	Daemon *sciond.Daemon
	// SignStats, when set, is applied to every statistics document before
	// storage — the hook the auth package uses for the paper's statistics
	// authentication design (§4.2.2).
	SignStats func(docdb.Document) error
}

// Run executes the test-suite: optional collection, then the three nested
// loops of run_test.py — for each iteration, for each destination, for each
// path: ping (latency + loss), bwtest with 64-byte packets, bwtest with
// MTU-sized packets, both directions. Statistics for a destination are
// batch-inserted only after all its paths were tested once, the
// fault-tolerance/I/O trade-off of §4.2.2.
func (s *Suite) Run(opts RunOpts) (RunReport, error) {
	opts = opts.withDefaults()
	rep := RunReport{Iterations: opts.Iterations}

	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		return rep, err
	}
	if !opts.Skip {
		if _, err := CollectPaths(s.DB, s.Daemon, opts.Collect); err != nil {
			return rep, err
		}
	}
	servers, err := Servers(s.DB)
	if err != nil {
		return rep, err
	}
	if opts.SomeOnly && len(servers) > 1 {
		servers = servers[:1]
	}
	if len(opts.ServerIDs) > 0 {
		want := map[int]bool{}
		for _, id := range opts.ServerIDs {
			want[id] = true
		}
		kept := servers[:0]
		for _, srv := range servers {
			if want[srv.ID] {
				kept = append(kept, srv)
			}
		}
		servers = kept
	}
	rep.Destinations = len(servers)

	statsCol := s.DB.Collection(ColStats)
	// A fresh process starts the simulated clock at zero; when resuming a
	// persisted database, move past the newest stored measurement so stats
	// identifiers (path id + timestamp) stay unique.
	if last := statsCol.FindOne(docdb.Query{SortBy: FTimestamp, SortDesc: true}); last != nil {
		if ms, ok := asInt(last[FTimestamp]); ok {
			if newest := time.Duration(ms) * time.Millisecond; s.Daemon.Network().Now() <= newest {
				s.Daemon.Network().Advance(newest - s.Daemon.Network().Now() + time.Millisecond)
			}
		}
	}
	for it := 0; it < opts.Iterations; it++ {
		for _, srv := range servers {
			docs, tested, failures, unresolved := s.testDestination(srv, opts)
			rep.PathsTested += tested
			rep.Failures += failures
			rep.UnresolvedPaths += unresolved
			if len(docs) == 0 {
				continue
			}
			if s.SignStats != nil {
				for _, d := range docs {
					if err := s.SignStats(d); err != nil {
						return rep, fmt.Errorf("measure: signing stats: %w", err)
					}
				}
			}
			// Batch insertion per destination (§4.2.2).
			if err := statsCol.InsertMany(docs); err != nil {
				return rep, fmt.Errorf("measure: storing stats for server %d: %w", srv.ID, err)
			}
			rep.StatsStored += len(docs)
			if err := s.DB.Flush(); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// testDestination measures every stored path of one destination once and
// returns the stats documents to batch-insert.
func (s *Suite) testDestination(srv Server, opts RunOpts) (docs []docdb.Document, tested, failures, unresolved int) {
	pathDocs, err := PathsForServer(s.DB, srv.ID)
	if err != nil {
		return nil, 0, 1, 0
	}
	live, err := s.Daemon.PathsTo(srv.Address.IA)
	if err != nil {
		// Server unreachable right now: record nothing for it, keep going.
		return nil, 0, 1, 0
	}
	net := s.Daemon.Network()
	for _, pd := range pathDocs {
		p := pathmgr.FindBySequence(live, pd.Sequence)
		if p == nil {
			unresolved++
			continue
		}
		tested++
		ts := net.Now()
		doc := docdb.Document{
			"_id":      StatsID(pd.ID, ts),
			FPathID:    pd.ID,
			FServerID:  srv.ID,
			FTimestamp: ts.Milliseconds(),
			FHops:      pd.Hops,
			FISDs:      anySlice(pd.ISDs),
			FTargetBps: opts.BwTargetBps,
		}

		// Latency and loss (scion ping -c 30 --interval 0.1s).
		stats, err := scmp.Ping(net, p, scmp.PingOpts{
			Count: opts.PingCount, Interval: opts.PingInterval,
		})
		if err != nil {
			failures++
			doc[FError] = err.Error()
			docs = append(docs, doc)
			continue
		}
		doc[FLoss] = stats.Loss
		if stats.Received > 0 {
			doc[FAvgLatency] = float64(stats.Avg) / float64(time.Millisecond)
			doc[FMdev] = float64(stats.Mdev) / float64(time.Millisecond)
		}

		if !opts.SkipBandwidth {
			// Bandwidth with 64-byte packets, both directions (§5.3).
			if res, err := s.bandwidth(p, 64, opts); err != nil {
				failures++
				doc[FError] = err.Error()
			} else {
				doc[FBwUp64] = res.CS.AchievedBps
				doc[FBwDown64] = res.SC.AchievedBps
			}
			// Bandwidth with MTU-sized packets.
			if res, err := s.bandwidth(p, p.MTU, opts); err != nil {
				failures++
				doc[FError] = err.Error()
			} else {
				doc[FBwUpMTU] = res.CS.AchievedBps
				doc[FBwDownMTU] = res.SC.AchievedBps
			}
		}
		docs = append(docs, doc)
	}
	return docs, tested, failures, unresolved
}

func (s *Suite) bandwidth(p *pathmgr.Path, size int, opts RunOpts) (bwtest.Result, error) {
	count := int(opts.BwTargetBps * opts.BwDuration.Seconds() / float64(size*8))
	if count < 1 {
		count = 1
	}
	params := bwtest.Params{
		Duration:    opts.BwDuration,
		PacketBytes: size,
		PacketCount: count,
		TargetBps:   opts.BwTargetBps,
	}
	return bwtest.Run(s.Daemon.Network(), p, params, bwtest.Params{})
}

func anySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
