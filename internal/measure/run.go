package measure

import (
	"context"
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/bwtest"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
	"github.com/upin/scionpath/internal/simnet"
)

// Every option struct in this package follows one convention: an
// unexported withDefaults() fills zero values, an exported Validate()
// rejects inconsistent input, and every public entry point applies both
// before doing any work — so Run, Monitor and CollectPaths all reject bad
// input the same way instead of each rolling its own checks.

// RetryPolicy bounds the per-cell retry loop of the campaign engine:
// transient cell-level measurement failures (server unreachable, corrupt
// stored paths) are retried with exponential backoff plus jitter before
// the cell is counted as failed.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per cell (>= 1).
	MaxAttempts int
	// BaseBackoff is the wall-clock delay before the first retry; each
	// further retry doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// JitterFrac in [0,1] randomises each delay by up to that fraction, so
	// retrying cells do not thundering-herd a recovering destination.
	JitterFrac float64
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 3
	}
	if r.BaseBackoff == 0 {
		r.BaseBackoff = 10 * time.Millisecond
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = time.Second
	}
	if r.JitterFrac == 0 {
		r.JitterFrac = 0.5
	}
	return r
}

// Validate implements the package's option convention.
func (r RetryPolicy) Validate() error {
	if r.MaxAttempts < 1 {
		return fmt.Errorf("retry needs MaxAttempts >= 1, have %d", r.MaxAttempts)
	}
	if r.BaseBackoff < 0 || r.MaxBackoff < 0 {
		return fmt.Errorf("retry backoffs must be >= 0, have base %v max %v", r.BaseBackoff, r.MaxBackoff)
	}
	if r.MaxBackoff < r.BaseBackoff {
		return fmt.Errorf("retry MaxBackoff %v < BaseBackoff %v", r.MaxBackoff, r.BaseBackoff)
	}
	if r.JitterFrac < 0 || r.JitterFrac > 1 {
		return fmt.Errorf("retry JitterFrac %v outside [0,1]", r.JitterFrac)
	}
	return nil
}

// Campaign is the shared fault-tolerance configuration of a measurement
// campaign — the one config block RunOpts (and, through it, MonitorOpts)
// carries for the parallel, resumable engine of docs/CAMPAIGN.md.
type Campaign struct {
	// Workers selects the execution engine. 0 (the default) runs the classic
	// strictly sequential loop on the suite's own world. >= 1 runs the
	// sharded campaign engine: the (iteration x destination) cell grid is
	// fanned out across that many workers, each cell measured on a private
	// forked world whose seed derives from Seed, so the merged stats
	// database is identical for every worker count.
	Workers int
	// Name identifies the campaign in the checkpoint journal. Empty derives
	// a name from the seed and iteration count.
	Name string
	// Seed is the campaign seed every per-cell world seed derives from.
	// 0 uses the suite network's own seed.
	Seed int64
	// Resume skips cells already checkpointed in campaign_progress instead
	// of re-measuring them. It implies Skip (paths were collected by the
	// interrupted run) and requires Workers >= 1.
	Resume bool
	// Retry bounds per-cell retries of transient failures.
	Retry RetryPolicy
	// IterationStride spaces the simulated start times of consecutive
	// iterations of one destination, keeping stats identifiers (path id +
	// timestamp) unique across cells. It must exceed the simulated duration
	// of one cell; the 2h default covers the paper-scale parameters.
	IterationStride time.Duration
}

func (c Campaign) withDefaults() Campaign {
	c.Retry = c.Retry.withDefaults()
	if c.IterationStride == 0 {
		c.IterationStride = 2 * time.Hour
	}
	return c
}

// Validate implements the package's option convention.
func (c Campaign) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("campaign Workers %d is negative", c.Workers)
	}
	if c.Resume && c.Workers < 1 {
		return fmt.Errorf("campaign Resume requires the campaign engine (Workers >= 1)")
	}
	if c.IterationStride <= 0 {
		return fmt.Errorf("campaign IterationStride %v must be positive", c.IterationStride)
	}
	return c.Retry.Validate()
}

// RunOpts mirrors the test_suite.sh command line (§5.1) plus the
// measurement parameters of §5.3 and the campaign-engine configuration.
type RunOpts struct {
	// Iterations is the mandatory <iterations> argument: how many times
	// each path is tested.
	Iterations int
	// Skip bypasses paths collection (--skip), meaningful "only if paths
	// have already been collected and have not changed".
	Skip bool
	// SomeOnly constrains execution to the first destination (--some_only).
	SomeOnly bool
	// ServerIDs optionally restricts the run to specific destinations
	// (the paper's 5-destination focus subset). Empty means all.
	ServerIDs []int

	// PingCount/PingInterval are the scion ping parameters (30 / 0.1 s).
	PingCount    int
	PingInterval time.Duration
	// BwDuration and BwTargetBps parameterise the bwtester runs
	// ("3,64,?,12Mbps" and "3,MTU,?,12Mbps" by default).
	BwDuration  time.Duration
	BwTargetBps float64
	// SkipBandwidth runs only the latency/loss measurement (used by the
	// loss experiment to keep the timeline dense).
	SkipBandwidth bool

	Collect CollectOpts
	// Campaign configures the parallel, resumable campaign engine; the
	// zero value keeps the classic sequential runner.
	Campaign Campaign
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Iterations == 0 {
		o.Iterations = 1
	}
	if o.PingCount == 0 {
		o.PingCount = 30
	}
	if o.PingInterval == 0 {
		o.PingInterval = 100 * time.Millisecond
	}
	if o.BwDuration == 0 {
		o.BwDuration = 3 * time.Second
	}
	if o.BwTargetBps == 0 {
		o.BwTargetBps = 12e6
	}
	o.Collect = o.Collect.withDefaults()
	o.Campaign = o.Campaign.withDefaults()
	return o
}

// Validate implements the package's option convention. It assumes defaults
// have been applied (Run does both).
func (o RunOpts) Validate() error {
	if o.Iterations < 1 {
		return fmt.Errorf("measure: run needs Iterations >= 1, have %d", o.Iterations)
	}
	if o.PingCount < 1 || o.PingInterval <= 0 {
		return fmt.Errorf("measure: run needs PingCount >= 1 and a positive PingInterval, have %d / %v",
			o.PingCount, o.PingInterval)
	}
	if o.BwDuration <= 0 || o.BwTargetBps <= 0 {
		return fmt.Errorf("measure: run needs positive BwDuration and BwTargetBps, have %v / %v",
			o.BwDuration, o.BwTargetBps)
	}
	for _, id := range o.ServerIDs {
		if id < 1 {
			return fmt.Errorf("measure: run got non-positive server id %d", id)
		}
	}
	if err := o.Collect.Validate(); err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	if err := o.Campaign.Validate(); err != nil {
		return fmt.Errorf("measure: %w", err)
	}
	return nil
}

// RunReport summarises a test-suite run.
type RunReport struct {
	Iterations   int
	Destinations int
	PathsTested  int
	StatsStored  int
	// Failures counts measurements that errored; the suite continues past
	// them (fault tolerance, §4.1.2).
	Failures int
	// UnresolvedPaths counts stored paths whose hop-predicate sequence no
	// longer resolves to a live path.
	UnresolvedPaths int
	// SimulatedTime is the total simulated measurement time: the clock
	// advance of a sequential run, or the sum of per-cell advances of a
	// campaign-engine run (both deterministic per seed).
	SimulatedTime time.Duration
	// SkippedCells counts cells a resumed campaign found already
	// checkpointed and did not re-measure.
	SkippedCells int
}

// Suite bundles what a run needs.
type Suite struct {
	DB     *docdb.DB
	Daemon *sciond.Daemon
	// SignStats, when set, is applied to every statistics document before
	// storage — the hook the auth package uses for the paper's statistics
	// authentication design (§4.2.2).
	SignStats func(docdb.Document) error
}

// Run executes the test-suite: optional collection, then the (iteration x
// destination x path) measurement grid — for each cell: ping (latency +
// loss), bwtest with 64-byte packets, bwtest with MTU-sized packets, both
// directions. Statistics for a cell are batch-inserted only after all its
// paths were tested once, the fault-tolerance/I/O trade-off of §4.2.2.
//
// With opts.Campaign.Workers == 0 the grid runs strictly sequentially on
// the suite's own world. With Workers >= 1 it runs on the sharded,
// resumable campaign engine (see docs/CAMPAIGN.md): cells are measured on
// private forked worlds, completed cells are checkpointed in the
// campaign_progress collection, and the stored statistics are identical
// for every worker count given the same campaign seed.
//
// Cancellation is honored at cell boundaries: when ctx is cancelled,
// in-flight cells finish and checkpoint, remaining cells are skipped, and
// Run returns ctx's error alongside the partial report.
func (s *Suite) Run(ctx context.Context, opts RunOpts) (RunReport, error) {
	opts = opts.withDefaults()
	rep := RunReport{Iterations: opts.Iterations}
	if err := opts.Validate(); err != nil {
		return rep, err
	}
	// Timestamps are the suite's hot ordering: newestStatsTime sorts by
	// them, PruneStats range-deletes on them. An ordered index turns both
	// into index scans instead of full sorts/scans as history grows.
	s.DB.Collection(ColStats).EnsureSortedIndex(FTimestamp)
	if opts.Campaign.Workers >= 1 {
		return s.runCampaign(ctx, opts)
	}
	return s.runSequential(ctx, opts)
}

// runSequential is the classic strictly ordered runner on the suite's own
// shared world; its output is byte-compatible with the pre-engine suite.
func (s *Suite) runSequential(ctx context.Context, opts RunOpts) (RunReport, error) {
	rep := RunReport{Iterations: opts.Iterations}

	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		return rep, err
	}
	if !opts.Skip {
		if _, err := CollectPaths(ctx, s.DB, s.Daemon, opts.Collect); err != nil {
			return rep, err
		}
	}
	servers, err := s.campaignServers(opts)
	if err != nil {
		return rep, err
	}
	rep.Destinations = len(servers)

	statsCol := s.DB.Collection(ColStats)
	// A fresh process starts the simulated clock at zero; when resuming a
	// persisted database, move past the newest stored measurement so stats
	// identifiers (path id + timestamp) stay unique.
	if newest, ok := newestStatsTime(statsCol); ok {
		if s.Daemon.Network().Now() <= newest {
			s.Daemon.Network().Advance(newest - s.Daemon.Network().Now() + time.Millisecond)
		}
	}
	start := s.Daemon.Network().Now()
	for it := 0; it < opts.Iterations; it++ {
		for _, srv := range servers {
			// Cancellation boundary: one (iteration, destination) cell.
			if err := ctx.Err(); err != nil {
				rep.SimulatedTime = s.Daemon.Network().Now() - start
				return rep, fmt.Errorf("measure: run cancelled: %w", err)
			}
			docs, counts, err := measureDestination(s.Daemon, s.DB, srv, opts)
			if err != nil {
				// Destination unusable right now: record nothing for it,
				// keep going (server failure tolerance, §4.1.2).
				rep.Failures++
				continue
			}
			rep.PathsTested += counts.tested
			rep.Failures += counts.failures
			rep.UnresolvedPaths += counts.unresolved
			if len(docs) == 0 {
				continue
			}
			if err := s.signAll(docs); err != nil {
				return rep, err
			}
			// Batch insertion per destination (§4.2.2).
			if err := statsCol.InsertMany(docs); err != nil {
				return rep, fmt.Errorf("measure: storing stats for server %d: %w", srv.ID, err)
			}
			rep.StatsStored += len(docs)
			if err := s.DB.Flush(); err != nil {
				return rep, err
			}
		}
	}
	rep.SimulatedTime = s.Daemon.Network().Now() - start
	return rep, nil
}

// campaignServers resolves and filters the destination set of a run.
func (s *Suite) campaignServers(opts RunOpts) ([]Server, error) {
	servers, err := Servers(s.DB)
	if err != nil {
		return nil, err
	}
	if opts.SomeOnly && len(servers) > 1 {
		servers = servers[:1]
	}
	if len(opts.ServerIDs) > 0 {
		want := map[int]bool{}
		for _, id := range opts.ServerIDs {
			want[id] = true
		}
		kept := servers[:0]
		for _, srv := range servers {
			if want[srv.ID] {
				kept = append(kept, srv)
			}
		}
		servers = kept
	}
	return servers, nil
}

// signAll applies the SignStats hook to a stats batch.
func (s *Suite) signAll(docs []docdb.Document) error {
	if s.SignStats == nil {
		return nil
	}
	for _, d := range docs {
		if err := s.SignStats(d); err != nil {
			return fmt.Errorf("measure: signing stats: %w", err)
		}
	}
	return nil
}

// newestStatsTime returns the timestamp of the newest stored measurement.
func newestStatsTime(statsCol *docdb.Collection) (time.Duration, bool) {
	last := statsCol.FindOne(docdb.Query{SortBy: FTimestamp, SortDesc: true})
	if last == nil {
		return 0, false
	}
	ms, ok := asInt(last[FTimestamp])
	if !ok {
		return 0, false
	}
	return time.Duration(ms) * time.Millisecond, true
}

// cellCounts aggregates one cell's per-path outcomes.
type cellCounts struct {
	tested     int
	failures   int
	unresolved int
}

// measureDestination measures every stored path of one destination once on
// the given daemon's world and returns the stats documents to
// batch-insert. A returned error is a cell-level failure (stored paths
// unreadable, destination unreachable) — the transient class the campaign
// engine retries; per-path measurement errors are recorded as data in the
// documents instead.
func measureDestination(daemon *sciond.Daemon, db *docdb.DB, srv Server, opts RunOpts) ([]docdb.Document, cellCounts, error) {
	var counts cellCounts
	pathDocs, err := PathsForServer(db, srv.ID)
	if err != nil {
		return nil, counts, fmt.Errorf("measure: stored paths for server %d: %w", srv.ID, err)
	}
	live, err := daemon.PathsTo(srv.Address.IA)
	if err != nil {
		return nil, counts, fmt.Errorf("measure: server %d unreachable: %w", srv.ID, err)
	}
	net := daemon.Network()
	var docs []docdb.Document
	for _, pd := range pathDocs {
		p := pathmgr.FindBySequence(live, pd.Sequence)
		if p == nil {
			counts.unresolved++
			continue
		}
		counts.tested++
		ts := net.Now()
		doc := docdb.Document{
			"_id":      StatsID(pd.ID, ts),
			FPathID:    pd.ID,
			FServerID:  srv.ID,
			FTimestamp: ts.Milliseconds(),
			FHops:      pd.Hops,
			FISDs:      anySlice(pd.ISDs),
			FTargetBps: opts.BwTargetBps,
		}

		// Latency and loss (scion ping -c 30 --interval 0.1s).
		stats, err := scmp.Ping(net, p, scmp.PingOpts{
			Count: opts.PingCount, Interval: opts.PingInterval,
		})
		if err != nil {
			counts.failures++
			doc[FError] = err.Error()
			docs = append(docs, doc)
			continue
		}
		doc[FLoss] = stats.Loss
		if stats.Received > 0 {
			doc[FAvgLatency] = float64(stats.Avg) / float64(time.Millisecond)
			doc[FMdev] = float64(stats.Mdev) / float64(time.Millisecond)
		}

		if !opts.SkipBandwidth {
			// Bandwidth with 64-byte packets, both directions (§5.3).
			if res, err := bandwidth(net, p, 64, opts); err != nil {
				counts.failures++
				doc[FError] = err.Error()
			} else {
				doc[FBwUp64] = res.CS.AchievedBps
				doc[FBwDown64] = res.SC.AchievedBps
			}
			// Bandwidth with MTU-sized packets.
			if res, err := bandwidth(net, p, p.MTU, opts); err != nil {
				counts.failures++
				doc[FError] = err.Error()
			} else {
				doc[FBwUpMTU] = res.CS.AchievedBps
				doc[FBwDownMTU] = res.SC.AchievedBps
			}
		}
		docs = append(docs, doc)
	}
	return docs, counts, nil
}

func bandwidth(net *simnet.Network, p *pathmgr.Path, size int, opts RunOpts) (bwtest.Result, error) {
	count := int(opts.BwTargetBps * opts.BwDuration.Seconds() / float64(size*8))
	if count < 1 {
		count = 1
	}
	params := bwtest.Params{
		Duration:    opts.BwDuration,
		PacketBytes: size,
		PacketCount: count,
		TargetBps:   opts.BwTargetBps,
	}
	return bwtest.Run(net, p, params, bwtest.Params{})
}

func anySlice(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}
