package measure

import (
	"time"

	"github.com/upin/scionpath/internal/docdb"
)

// PruneStats deletes statistics older than the cutoff (simulated time) and
// returns how many documents were removed. Long-running monitors pair it
// with docdb's journal compaction to keep the database proportional to the
// retention window rather than the full campaign history — the flip side
// of the paper's scalability requirement ("the amount of data generated
// grows both with the number of tests performed per destination, as well
// as the number of destinations tested", §4.1.1). The deletions are
// flushed to the journal before returning, so a reported count is durable;
// a flush failure is returned alongside the in-memory count.
func PruneStats(db *docdb.DB, olderThan time.Duration) (int, error) {
	removed := db.Collection(ColStats).Delete(docdb.Lt(FTimestamp, olderThan.Milliseconds()))
	return removed, db.Flush()
}

// RetentionPolicy bundles pruning with compaction for monitor loops.
type RetentionPolicy struct {
	// Window is how much simulated history to keep.
	Window time.Duration
	// CompactEvery triggers journal compaction after this many prune calls
	// (0 disables compaction).
	CompactEvery int
	calls        int
}

// Apply prunes relative to the current simulated time and compacts the
// journal on schedule. It reports documents removed and whether a
// compaction ran.
func (r *RetentionPolicy) Apply(db *docdb.DB, now time.Duration) (removed int, compacted bool, err error) {
	if r.Window > 0 && now > r.Window {
		removed, err = PruneStats(db, now-r.Window)
		if err != nil {
			return removed, false, err
		}
	}
	r.calls++
	if r.CompactEvery > 0 && r.calls%r.CompactEvery == 0 {
		if cerr := db.Compact(); cerr != nil {
			return removed, false, cerr
		}
		compacted = true
	}
	return removed, compacted, nil
}
