package measure

import (
	"context"
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/docdb"
)

// MonitorOpts configures continuous operation: the paper's architecture is
// built for it ("continuous measurements require continuous functioning",
// §4.1.2) — repeated campaigns with idle gaps, re-collecting paths each
// round and reporting what changed.
type MonitorOpts struct {
	// Campaigns is how many measurement rounds to run.
	Campaigns int
	// Gap is the simulated idle time between rounds.
	Gap time.Duration
	// Run parameterises each round (Skip is ignored; the monitor owns
	// collection).
	Run RunOpts
	// Recollect re-runs paths collection before every round (default: only
	// before the first).
	Recollect bool
}

func (o MonitorOpts) withDefaults() MonitorOpts {
	o.Run = o.Run.withDefaults()
	return o
}

// Validate implements the package's option convention. The monitor owns
// the suite's live clock (rounds advance it and deltas compare against it),
// which is incompatible with the campaign engine's per-cell forked worlds —
// so monitoring requires the sequential runner.
func (o MonitorOpts) Validate() error {
	if o.Campaigns < 1 {
		return fmt.Errorf("measure: monitor needs >= 1 campaign, have %d", o.Campaigns)
	}
	if o.Gap < 0 {
		return fmt.Errorf("measure: monitor Gap %v is negative", o.Gap)
	}
	if o.Run.Campaign.Workers != 0 || o.Run.Campaign.Resume {
		return fmt.Errorf("measure: monitor rounds run sequentially; set Run.Campaign to its zero value")
	}
	return o.Run.Validate()
}

// CampaignDelta reports what changed between consecutive rounds.
type CampaignDelta struct {
	Campaign    int
	StatsStored int
	Failures    int
	// NewPaths/LostPaths are path ids that appeared/disappeared in this
	// round's collection relative to the previous one.
	NewPaths, LostPaths []string
	// StatusChanged are path ids whose probed liveness flipped.
	StatusChanged []string
}

// Monitor runs repeated campaigns and returns one delta per round.
// Cancellation is honored at round boundaries: completed rounds' deltas are
// returned alongside ctx's error.
func (s *Suite) Monitor(ctx context.Context, opts MonitorOpts) ([]CampaignDelta, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		return nil, err
	}

	var out []CampaignDelta
	prev := map[string]string{} // path id -> status
	for round := 0; round < opts.Campaigns; round++ {
		if err := ctx.Err(); err != nil {
			return out, fmt.Errorf("measure: monitor cancelled before round %d: %w", round, err)
		}
		if round == 0 || opts.Recollect {
			collect := opts.Run.Collect
			collect.Probe = true
			if _, err := CollectPaths(ctx, s.DB, s.Daemon, collect); err != nil {
				return out, fmt.Errorf("measure: monitor round %d: %w", round, err)
			}
		}
		cur := snapshotPaths(s.DB)
		delta := CampaignDelta{Campaign: round}
		for id, status := range cur {
			old, existed := prev[id]
			switch {
			case !existed && round > 0:
				delta.NewPaths = append(delta.NewPaths, id)
			case existed && old != status:
				delta.StatusChanged = append(delta.StatusChanged, id)
			}
		}
		for id := range prev {
			if _, still := cur[id]; !still {
				delta.LostPaths = append(delta.LostPaths, id)
			}
		}
		prev = cur

		runOpts := opts.Run
		runOpts.Skip = true // collection handled above
		rep, err := s.Run(ctx, runOpts)
		if err != nil {
			return out, fmt.Errorf("measure: monitor round %d: %w", round, err)
		}
		delta.StatsStored = rep.StatsStored
		delta.Failures = rep.Failures
		out = append(out, delta)

		if opts.Gap > 0 && round+1 < opts.Campaigns {
			s.Daemon.Network().Advance(opts.Gap)
		}
	}
	return out, nil
}

// snapshotPaths maps stored path ids to their probed status, streaming
// zero-copy: only the id and status strings survive the iteration.
func snapshotPaths(db *docdb.DB) map[string]string {
	out := map[string]string{}
	db.Collection(ColPaths).ForEach(docdb.Query{}, func(d docdb.Document) bool {
		status, _ := d[FStatus].(string)
		out[d.ID()] = status
		return true
	})
	return out
}
