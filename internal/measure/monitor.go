package measure

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/docdb"
)

// MonitorOpts configures continuous operation: the paper's architecture is
// built for it ("continuous measurements require continuous functioning",
// §4.1.2) — repeated campaigns with idle gaps, re-collecting paths each
// round and reporting what changed.
type MonitorOpts struct {
	// Campaigns is how many measurement rounds to run.
	Campaigns int
	// Gap is the simulated idle time between rounds.
	Gap time.Duration
	// Run parameterises each round (Skip is ignored; the monitor owns
	// collection).
	Run RunOpts
	// Recollect re-runs paths collection before every round (default: only
	// before the first).
	Recollect bool
}

// CampaignDelta reports what changed between consecutive rounds.
type CampaignDelta struct {
	Campaign    int
	StatsStored int
	Failures    int
	// NewPaths/LostPaths are path ids that appeared/disappeared in this
	// round's collection relative to the previous one.
	NewPaths, LostPaths []string
	// StatusChanged are path ids whose probed liveness flipped.
	StatusChanged []string
}

// Monitor runs repeated campaigns and returns one delta per round.
func (s *Suite) Monitor(opts MonitorOpts) ([]CampaignDelta, error) {
	if opts.Campaigns < 1 {
		return nil, fmt.Errorf("measure: monitor needs >= 1 campaign, have %d", opts.Campaigns)
	}
	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		return nil, err
	}

	var out []CampaignDelta
	prev := map[string]string{} // path id -> status
	for round := 0; round < opts.Campaigns; round++ {
		if round == 0 || opts.Recollect {
			collect := opts.Run.Collect
			collect.Probe = true
			if _, err := CollectPaths(s.DB, s.Daemon, collect); err != nil {
				return out, fmt.Errorf("measure: monitor round %d: %w", round, err)
			}
		}
		cur := snapshotPaths(s.DB)
		delta := CampaignDelta{Campaign: round}
		for id, status := range cur {
			old, existed := prev[id]
			switch {
			case !existed && round > 0:
				delta.NewPaths = append(delta.NewPaths, id)
			case existed && old != status:
				delta.StatusChanged = append(delta.StatusChanged, id)
			}
		}
		for id := range prev {
			if _, still := cur[id]; !still {
				delta.LostPaths = append(delta.LostPaths, id)
			}
		}
		prev = cur

		runOpts := opts.Run
		runOpts.Skip = true // collection handled above
		rep, err := s.Run(runOpts)
		if err != nil {
			return out, fmt.Errorf("measure: monitor round %d: %w", round, err)
		}
		delta.StatsStored = rep.StatsStored
		delta.Failures = rep.Failures
		out = append(out, delta)

		if opts.Gap > 0 && round+1 < opts.Campaigns {
			s.Daemon.Network().Advance(opts.Gap)
		}
	}
	return out, nil
}

// snapshotPaths maps stored path ids to their probed status.
func snapshotPaths(db *docdb.DB) map[string]string {
	out := map[string]string{}
	for _, d := range db.Collection(ColPaths).Find(docdb.Query{Project: []string{FStatus}}) {
		status, _ := d[FStatus].(string)
		out[d.ID()] = status
	}
	return out
}
