package measure

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/upin/scionpath/internal/docdb"
)

// The campaign engine (docs/CAMPAIGN.md) fans the (iteration x destination)
// cell grid across a worker pool. Each cell is measured on a private forked
// world whose seed derives only from (campaign seed, server, iteration,
// attempt), so results do not depend on worker count or scheduling — a
// 4-worker run stores exactly the statistics a 1-worker run stores.
// Completed cells are checkpointed in the campaign_progress collection;
// an interrupted campaign resumed with Resume re-measures nothing.

// cell is one (iteration, destination) grid point.
type gridCell struct {
	iteration int
	srv       Server
}

// cellResult is the outcome of measuring one cell. A cell whose attempts
// were all exhausted has no docs and counts one cell-level failure.
type cellResult struct {
	docs     []docdb.Document
	counts   cellCounts
	simd     time.Duration // simulated time the cell's measurements consumed
	attempts int           // tries used (1 = first attempt succeeded)
}

// campaignRun carries one campaign execution. Everything above the mutex is
// fixed before the workers start; mu guards the cross-worker aggregate
// below it.
type campaignRun struct {
	suite  *Suite
	opts   RunOpts
	name   string
	seed   int64
	base   time.Duration // simulated start of iteration 0
	stride time.Duration

	mu       sync.Mutex
	rep      RunReport
	firstErr error
}

// runCampaign executes Run on the campaign engine (Workers >= 1).
func (s *Suite) runCampaign(ctx context.Context, opts RunOpts) (RunReport, error) {
	rep := RunReport{Iterations: opts.Iterations}
	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		return rep, err
	}
	// Resume implies Skip: re-collecting could reshape the cell grid the
	// checkpoints refer to.
	if !opts.Skip && !opts.Campaign.Resume {
		if _, err := CollectPaths(ctx, s.DB, s.Daemon, opts.Collect); err != nil {
			return rep, err
		}
	}
	servers, err := s.campaignServers(opts)
	if err != nil {
		return rep, err
	}
	rep.Destinations = len(servers)

	run, err := s.prepareCampaign(opts, servers)
	if err != nil {
		return rep, err
	}
	run.rep = rep

	// Fold already-checkpointed cells into the report and queue the rest.
	progress := s.DB.Collection(ColProgress)
	var cells []gridCell
	for it := 0; it < opts.Iterations; it++ {
		for _, srv := range servers {
			if opts.Campaign.Resume {
				if doc := progress.Get(CellID(run.name, it, srv.ID)); doc != nil {
					run.foldCheckpoint(doc)
					continue
				}
			}
			cells = append(cells, gridCell{iteration: it, srv: srv})
		}
	}

	jobs := make(chan gridCell)
	var wg sync.WaitGroup
	for w := 0; w < opts.Campaign.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				// Cancellation (and first fatal error) boundary: a cell that
				// already started finishes and checkpoints; queued cells are
				// drained unrun.
				if ctx.Err() != nil || run.failedFatally() {
					continue
				}
				run.runCell(ctx, c)
			}
		}()
	}
	for _, c := range cells {
		jobs <- c
	}
	close(jobs)
	wg.Wait()

	run.mu.Lock()
	rep, err = run.rep, run.firstErr
	run.mu.Unlock()
	if err != nil {
		return rep, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return rep, fmt.Errorf("measure: campaign %q interrupted (resume with Campaign.Resume): %w", run.name, cerr)
	}
	return rep, nil
}

// prepareCampaign resolves the campaign identity and its checkpoint
// metadata document. A fresh campaign clears leftover progress under the
// same name and records seed, time base, stride and a config fingerprint;
// a resumed campaign loads them back and rejects a changed configuration.
func (s *Suite) prepareCampaign(opts RunOpts, servers []Server) (*campaignRun, error) {
	run := &campaignRun{
		suite:  s,
		opts:   opts,
		seed:   opts.Campaign.Seed,
		stride: opts.Campaign.IterationStride,
	}
	if run.seed == 0 {
		run.seed = s.Daemon.Network().Seed()
	}
	run.name = opts.Campaign.Name
	if run.name == "" {
		run.name = fmt.Sprintf("c%d-%dx%d", run.seed, opts.Iterations, len(servers))
	}
	fp := campaignFingerprint(opts, run.seed, servers)
	progress := s.DB.Collection(ColProgress)

	if opts.Campaign.Resume {
		meta := progress.Get(CampaignMetaID(run.name))
		if meta == nil {
			return nil, fmt.Errorf("measure: campaign %q has no checkpoint to resume", run.name)
		}
		if stored, _ := meta[FConfig].(string); stored != fp {
			return nil, fmt.Errorf("measure: campaign %q config changed since checkpoint (was %q, now %q)",
				run.name, meta[FConfig], fp)
		}
		baseMs, ok := asInt(meta[FBaseMs])
		if !ok {
			return nil, fmt.Errorf("measure: campaign %q checkpoint has no %s", run.name, FBaseMs)
		}
		run.base = time.Duration(baseMs) * time.Millisecond
		return run, nil
	}

	// Fresh campaign: drop any stale progress under this name, then anchor
	// the time base past every stored measurement so stats identifiers
	// (path id + timestamp) cannot collide with existing data.
	progress.Delete(docdb.Eq(FCampaign, run.name))
	if newest, ok := newestStatsTime(s.DB.Collection(ColStats)); ok {
		run.base = newest + time.Millisecond
	}
	meta := docdb.Document{
		"_id":     CampaignMetaID(run.name),
		FCampaign: run.name,
		FSeed:     run.seed,
		FBaseMs:   run.base.Milliseconds(),
		FStrideMs: run.stride.Milliseconds(),
		FConfig:   fp,
	}
	if _, err := progress.UpsertMany([]docdb.Document{meta}); err != nil {
		return nil, fmt.Errorf("measure: campaign %q: writing checkpoint meta: %w", run.name, err)
	}
	if err := s.DB.Flush(); err != nil {
		return nil, err
	}
	return run, nil
}

// campaignFingerprint captures every parameter that shapes a campaign's
// results, so a resume with a drifted configuration is rejected instead of
// producing a database that no single configuration explains.
func campaignFingerprint(opts RunOpts, seed int64, servers []Server) string {
	ids := make([]int, len(servers))
	for i, s := range servers {
		ids[i] = s.ID
	}
	return fmt.Sprintf("seed=%d iters=%d servers=%v ping=%d@%s bw=%s@%g skipbw=%t stride=%s attempts=%d",
		seed, opts.Iterations, ids, opts.PingCount, opts.PingInterval,
		opts.BwDuration, opts.BwTargetBps, opts.SkipBandwidth,
		opts.Campaign.IterationStride, opts.Campaign.Retry.MaxAttempts)
}

// runCell measures one cell with retries and stores its outcome.
func (r *campaignRun) runCell(ctx context.Context, c gridCell) {
	res, err := r.measureCell(ctx, c)
	if err != nil {
		// Only cancellation aborts a cell without a checkpoint; it will be
		// re-measured (deterministically) on resume.
		return
	}
	if err := r.storeCell(c, res); err != nil {
		r.recordFatal(err)
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rep.PathsTested += res.counts.tested
	r.rep.Failures += res.counts.failures
	r.rep.UnresolvedPaths += res.counts.unresolved
	r.rep.StatsStored += len(res.docs)
	r.rep.SimulatedTime += res.simd
}

// measureCell runs the retry loop of one cell. Each attempt forks a fresh
// private world seeded by (campaign seed, server, iteration, attempt) and
// advances it to the cell's simulated start time, so the outcome depends
// only on those coordinates — never on which worker ran it or when.
//
//lint:deterministic cell outcomes depend only on (seed, server, iteration, attempt)
func (r *campaignRun) measureCell(ctx context.Context, c gridCell) (cellResult, error) {
	pol := r.opts.Campaign.Retry
	// Jitter randomness is wall-clock-only (it shapes retry pacing, not
	// measurements), but seeding it from the cell keeps runs reproducible.
	jrng := rand.New(rand.NewSource(cellSeed(r.seed, c.srv.ID, c.iteration, pol.MaxAttempts)))
	start := r.base + time.Duration(c.iteration)*r.stride
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepBackoff(ctx, pol, attempt, jrng); err != nil {
				return cellResult{}, err
			}
		}
		if err := ctx.Err(); err != nil {
			return cellResult{}, err
		}
		net := r.suite.Daemon.Network().Fork(cellSeed(r.seed, c.srv.ID, c.iteration, attempt))
		net.Advance(start)
		daemon := r.suite.Daemon.Fork(net)
		docs, counts, err := measureDestination(daemon, r.suite.DB, c.srv, r.opts)
		if err != nil {
			continue
		}
		return cellResult{docs: docs, counts: counts, simd: net.Now() - start, attempts: attempt + 1}, nil
	}
	// Retries exhausted: the cell becomes one recorded failure (server
	// failure tolerance, §4.1.2) and is checkpointed so a resume does not
	// re-fight a deterministic failure.
	return cellResult{counts: cellCounts{failures: 1}, attempts: pol.MaxAttempts}, nil
}

// storeCell persists a cell: sign, upsert the stats batch, checkpoint, and
// flush. The checkpoint is journaled after the stats it describes, so a
// crash can lose a checkpoint (the cell is deterministically re-measured
// and idempotently re-upserted on resume) but never stats it claims exist.
func (r *campaignRun) storeCell(c gridCell, res cellResult) error {
	if err := r.suite.signAll(res.docs); err != nil {
		return err
	}
	if len(res.docs) > 0 {
		if _, err := r.suite.DB.Collection(ColStats).UpsertMany(res.docs); err != nil {
			return fmt.Errorf("measure: storing stats for server %d iteration %d: %w", c.srv.ID, c.iteration, err)
		}
	}
	ckpt := docdb.Document{
		"_id":       CellID(r.name, c.iteration, c.srv.ID),
		FCampaign:   r.name,
		FIteration:  c.iteration,
		FServerID:   c.srv.ID,
		FAttempts:   res.attempts,
		FCellTested: res.counts.tested,
		FCellStored: len(res.docs),
		FCellFail:   res.counts.failures,
		FCellUnres:  res.counts.unresolved,
		FCellSimMs:  res.simd.Milliseconds(),
	}
	if _, err := r.suite.DB.Collection(ColProgress).UpsertMany([]docdb.Document{ckpt}); err != nil {
		return fmt.Errorf("measure: checkpointing cell %d/%d: %w", c.iteration, c.srv.ID, err)
	}
	return r.suite.DB.Flush()
}

// foldCheckpoint merges a previously completed cell's recorded counts into
// the report, so a resumed campaign reports the same totals an
// uninterrupted one would.
func (r *campaignRun) foldCheckpoint(doc docdb.Document) {
	tested, _ := asInt(doc[FCellTested])
	stored, _ := asInt(doc[FCellStored])
	failures, _ := asInt(doc[FCellFail])
	unresolved, _ := asInt(doc[FCellUnres])
	simMs, _ := asInt(doc[FCellSimMs])
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rep.SkippedCells++
	r.rep.PathsTested += tested
	r.rep.StatsStored += stored
	r.rep.Failures += failures
	r.rep.UnresolvedPaths += unresolved
	r.rep.SimulatedTime += time.Duration(simMs) * time.Millisecond
}

func (r *campaignRun) recordFatal(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.firstErr == nil {
		r.firstErr = err
	}
}

func (r *campaignRun) failedFatally() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.firstErr != nil
}

// cellSeed derives a per-(cell, attempt) world seed from the campaign seed
// by FNV-64a, the whole basis of schedule-independence.
func cellSeed(campaignSeed int64, serverID, iteration, attempt int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, v := range [...]uint64{uint64(campaignSeed), uint64(serverID), uint64(iteration), uint64(attempt)} {
		binary.BigEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	return int64(h.Sum64())
}

// backoffDelay computes the jittered exponential delay before retry
// `attempt` (1-based). BaseBackoff << (attempt-1) wraps int64 long before
// the shift count reaches 64 and can wrap to a small positive value that a
// d <= 0 check never catches, so the doubling is only applied while it
// provably fits; any attempt past that point saturates at MaxBackoff. The
// jitter draw happens exactly once regardless, keeping the jrng stream
// aligned across attempts.
func backoffDelay(pol RetryPolicy, attempt int, jrng *rand.Rand) time.Duration {
	d := pol.MaxBackoff
	if shift := uint(attempt - 1); shift < 63 && pol.BaseBackoff > 0 && pol.BaseBackoff <= math.MaxInt64>>shift {
		if b := pol.BaseBackoff << shift; b < d {
			d = b
		}
	}
	d = time.Duration(float64(d) * (1 + pol.JitterFrac*(2*jrng.Float64()-1)))
	if d > pol.MaxBackoff {
		d = pol.MaxBackoff
	}
	if d < 0 {
		d = 0
	}
	return d
}

// sleepBackoff waits out the exponential backoff before retry `attempt`
// (1-based), jittered by the policy's JitterFrac, honoring cancellation.
func sleepBackoff(ctx context.Context, pol RetryPolicy, attempt int, jrng *rand.Rand) error {
	d := backoffDelay(pol, attempt, jrng)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
