package measure

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func TestPruneStats(t *testing.T) {
	s := suite(t, 60)
	if _, err := s.Run(context.Background(), RunOpts{
		Iterations: 3, ServerIDs: []int{1},
		PingCount: 3, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		t.Fatal(err)
	}
	total := s.DB.Collection(ColStats).Count()
	if total == 0 {
		t.Fatal("no stats")
	}
	// Prune everything before the second iteration: the first iteration's
	// documents go, the later ones stay.
	var cutoff time.Duration
	docs := s.DB.Collection(ColStats).Find(docdb.Query{SortBy: FTimestamp})
	mid := docs[total/3]
	if ms, ok := mid[FTimestamp].(int64); ok {
		cutoff = time.Duration(ms) * time.Millisecond
	} else {
		cutoff = time.Duration(mid[FTimestamp].(float64)) * time.Millisecond
	}
	removed, err := PruneStats(s.DB, cutoff)
	if err != nil {
		t.Fatalf("PruneStats: %v", err)
	}
	if removed == 0 || removed >= total {
		t.Fatalf("pruned %d of %d", removed, total)
	}
	for _, d := range s.DB.Collection(ColStats).Find(docdb.Query{}) {
		ts, _ := d[FTimestamp].(int64)
		if time.Duration(ts)*time.Millisecond < cutoff {
			t.Errorf("stale doc %s survived", d.ID())
		}
	}
}

func TestRetentionPolicy(t *testing.T) {
	dbPath := filepath.Join(t.TempDir(), "db.jsonl")
	db, err := docdb.Open(docdb.WithPath(dbPath))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 61})
	daemon, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	s := &Suite{DB: db, Daemon: daemon}

	policy := &RetentionPolicy{Window: 30 * time.Second, CompactEvery: 2}
	var removedTotal int
	var compactions int
	for round := 0; round < 4; round++ {
		if _, err := s.Run(context.Background(), RunOpts{
			Iterations: 1, ServerIDs: []int{1}, Skip: round > 0,
			PingCount: 3, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
		}); err != nil {
			t.Fatal(err)
		}
		net.Advance(25 * time.Second)
		removed, compacted, err := policy.Apply(db, net.Now())
		if err != nil {
			t.Fatal(err)
		}
		removedTotal += removed
		if compacted {
			compactions++
		}
	}
	if removedTotal == 0 {
		t.Error("retention window never pruned anything")
	}
	if compactions != 2 {
		t.Errorf("%d compactions, want 2 (every 2nd apply)", compactions)
	}
	// Journal still replayable.
	db.Close()
	db2, err := docdb.Open(docdb.WithPath(dbPath))
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Collection(ColStats).Count() == 0 {
		t.Error("all stats lost after retention maintenance")
	}
	if fi, err := os.Stat(dbPath); err != nil || fi.Size() == 0 {
		t.Errorf("journal state: %v %v", fi, err)
	}
}
