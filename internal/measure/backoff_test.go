package measure

import (
	"math/rand"
	"testing"
	"time"
)

// TestBackoffDelayClamp drives backoffDelay through the attempt range where
// BaseBackoff << (attempt-1) overflows int64. Before the explicit clamp the
// shifted value could wrap to a small positive duration that slipped past
// the d <= 0 guard; every overflowing attempt must saturate at MaxBackoff.
func TestBackoffDelayClamp(t *testing.T) {
	pol := RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  time.Second,
		JitterFrac:  0, // deterministic: delay is exactly the clamped base
	}
	cases := []struct {
		attempt int
		want    time.Duration
	}{
		{1, 10 * time.Millisecond},
		{2, 20 * time.Millisecond},
		{7, 640 * time.Millisecond},
		{8, time.Second},  // 1.28s, above MaxBackoff
		{40, time.Second}, // 10ms << 39 ≈ 63.5 days, still representable
		{54, time.Second}, // 10ms << 53 overflows int64: must not wrap
		{63, time.Second}, // shift == 62, last in-range shift count
		{64, time.Second}, // shift == 63 would flip the sign bit
		{100, time.Second},
	}
	jrng := rand.New(rand.NewSource(1))
	for _, tc := range cases {
		got := backoffDelay(pol, tc.attempt, jrng)
		if got != tc.want {
			t.Errorf("backoffDelay(attempt=%d) = %v, want %v", tc.attempt, got, tc.want)
		}
	}
}

// TestBackoffDelayJitterBounded checks the jittered delay never escapes
// [0, MaxBackoff] for any attempt, including overflowing ones.
func TestBackoffDelayJitterBounded(t *testing.T) {
	pol := RetryPolicy{}.withDefaults() // JitterFrac 0.5
	jrng := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 128; attempt++ {
		for i := 0; i < 32; i++ {
			d := backoffDelay(pol, attempt, jrng)
			if d < 0 || d > pol.MaxBackoff {
				t.Fatalf("backoffDelay(attempt=%d) = %v, outside [0, %v]", attempt, d, pol.MaxBackoff)
			}
		}
	}
}

// TestBackoffDelayZeroBase: a zero BaseBackoff policy must saturate at
// MaxBackoff rather than shift zero forever.
func TestBackoffDelayZeroBase(t *testing.T) {
	pol := RetryPolicy{MaxAttempts: 3, BaseBackoff: 0, MaxBackoff: time.Second}
	jrng := rand.New(rand.NewSource(7))
	if d := backoffDelay(pol, 1, jrng); d != time.Second {
		t.Fatalf("backoffDelay with zero base = %v, want %v", d, time.Second)
	}
}
