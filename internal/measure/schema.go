// Package measure implements the paper's test-suite: the paths-collection
// stage (collect_paths.py), the measurement runner (run_test.py) with its
// three nested loops, and the database schema of Fig 3 — availableServers,
// paths and paths_stats collections.
package measure

import (
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/topology"
)

// Collection names. The first three match the paper's database schema
// (Fig 3); campaign_progress is the campaign engine's checkpoint journal
// (one document per completed measurement cell, plus one metadata document
// per campaign) that makes interrupted campaigns resumable.
const (
	ColServers  = "availableServers"
	ColPaths    = "paths"
	ColStats    = "paths_stats"
	ColProgress = "campaign_progress"
)

// Server document fields.
const (
	FServerID = "server_id"
	FAddress  = "address"
	FIA       = "ia"
	FName     = "name"
	FCountry  = "country"
	FOperator = "operator"
)

// Path document fields.
const (
	FPathIndex   = "path_index"
	FHops        = "hops"
	FSequence    = "hop_predicates"
	FISDs        = "isds"
	FMTU         = "mtu"
	FMinLatency  = "min_latency_ms"
	FStatus      = "status"
	FFingerprint = "fingerprint"
)

// Stats document fields. Latencies are milliseconds, loss is percent,
// bandwidths are bits per second; "up" is client->server, "down" is
// server->client; the 64/mtu suffix is the probe packet size (§5.3).
const (
	FPathID     = "path_id"
	FTimestamp  = "timestamp_ms"
	FAvgLatency = "avg_latency_ms"
	FMdev       = "mdev_ms"
	FLoss       = "loss_pct"
	FBwUp64     = "bw_up_64_bps"
	FBwDown64   = "bw_down_64_bps"
	FBwUpMTU    = "bw_up_mtu_bps"
	FBwDownMTU  = "bw_down_mtu_bps"
	FTargetBps  = "target_bps"
	FError      = "error"
)

// Campaign-progress document fields (see docs/CAMPAIGN.md for the schema).
const (
	FCampaign   = "campaign"
	FIteration  = "iteration"
	FSeed       = "seed"
	FBaseMs     = "base_ms"
	FStrideMs   = "stride_ms"
	FConfig     = "config"
	FAttempts   = "attempts"
	FCellTested = "paths_tested"
	FCellStored = "stats_stored"
	FCellFail   = "failures"
	FCellUnres  = "unresolved"
	FCellSimMs  = "sim_ms"
)

// CampaignMetaID is the _id of a campaign's metadata document.
func CampaignMetaID(campaign string) string {
	return fmt.Sprintf("meta:%s", campaign)
}

// CellID is the _id of a completed-cell checkpoint: one cell is the
// (iteration, destination) grid point of a campaign.
func CellID(campaign string, iteration, serverID int) string {
	return fmt.Sprintf("cell:%s:%d:%d", campaign, iteration, serverID)
}

// PathID builds the paper's path identifier: "a path whose id is 2_15
// identifies the path 15 of the destination 2" (§4.2.1).
func PathID(serverID, pathIndex int) string {
	return fmt.Sprintf("%d_%d", serverID, pathIndex)
}

// StatsID builds a stats document identifier by "combining the path
// identifier with a timestamp" (§4.2.1).
func StatsID(pathID string, ts time.Duration) string {
	return fmt.Sprintf("%s@%d", pathID, ts.Milliseconds())
}

// SeedServers populates availableServers from the topology's server
// catalogue, assigning the progressive integer ids (1..N) the paper uses.
// It is idempotent: an already seeded database is left untouched.
func SeedServers(db *docdb.DB, topo *topology.Topology) error {
	col := db.Collection(ColServers)
	if col.Count() > 0 {
		return nil
	}
	servers := topo.Servers()
	docs := make([]docdb.Document, 0, len(servers))
	for i, s := range servers {
		as := topo.AS(s.IA)
		docs = append(docs, docdb.Document{
			"_id":     fmt.Sprintf("%d", i+1),
			FServerID: i + 1,
			FAddress:  s.String(),
			FIA:       s.IA.String(),
			FName:     as.Name,
			FCountry:  as.Site.Country,
			FOperator: as.Operator,
		})
	}
	return col.InsertMany(docs)
}

// Server is a decoded availableServers document.
type Server struct {
	ID       int
	Address  addr.Host
	Name     string
	Country  string
	Operator string
}

// Servers decodes the availableServers collection in id order.
func Servers(db *docdb.DB) ([]Server, error) {
	docs := db.Collection(ColServers).Find(docdb.Query{SortBy: FServerID})
	out := make([]Server, 0, len(docs))
	for _, d := range docs {
		id, ok := asInt(d[FServerID])
		if !ok {
			return nil, fmt.Errorf("measure: server doc %q has no %s", d.ID(), FServerID)
		}
		rawAddr, _ := d[FAddress].(string)
		host, err := addr.ParseHost(rawAddr)
		if err != nil {
			return nil, fmt.Errorf("measure: server %d: %w", id, err)
		}
		s := Server{ID: id, Address: host}
		s.Name, _ = d[FName].(string)
		s.Country, _ = d[FCountry].(string)
		s.Operator, _ = d[FOperator].(string)
		out = append(out, s)
	}
	return out, nil
}

// asInt converts the numeric types a JSON round trip may produce.
func asInt(v any) (int, bool) {
	switch t := v.(type) {
	case int:
		return t, true
	case int64:
		return int(t), true
	case float64:
		return int(t), true
	default:
		return 0, false
	}
}
