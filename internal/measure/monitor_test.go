package measure

import (
	"context"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func TestMonitorSteadyState(t *testing.T) {
	s := suite(t, 50)
	deltas, err := s.Monitor(context.Background(), MonitorOpts{
		Campaigns: 3,
		Gap:       time.Second,
		Recollect: true,
		Run: RunOpts{
			Iterations: 1, ServerIDs: []int{1},
			PingCount: 3, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("%d deltas, want 3", len(deltas))
	}
	for i, d := range deltas {
		if d.Campaign != i {
			t.Errorf("delta %d numbered %d", i, d.Campaign)
		}
		if d.StatsStored == 0 {
			t.Errorf("round %d stored nothing", i)
		}
		// A static healthy network: nothing changes between rounds.
		if len(d.NewPaths) != 0 || len(d.LostPaths) != 0 || len(d.StatusChanged) != 0 {
			t.Errorf("round %d reported churn in a static network: %+v", i, d)
		}
	}
}

func TestMonitorDetectsStatusFlip(t *testing.T) {
	s := suite(t, 51)
	// The ETHZ--AP link dies before the second collection and stays dead.
	if err := s.Daemon.Network().ScheduleLinkOutage(simnet.LinkOutage{
		A: addr.MustParseIA("17-ffaa:0:1102"), B: topology.ETHZAP,
		Start: 2 * time.Second, End: 48 * time.Hour,
	}); err != nil {
		t.Fatal(err)
	}
	deltas, err := s.Monitor(context.Background(), MonitorOpts{
		Campaigns: 2,
		Gap:       30 * time.Second,
		Recollect: true,
		Run: RunOpts{
			Iterations: 1, ServerIDs: []int{1},
			PingCount: 3, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas[0].StatusChanged) != 0 {
		t.Errorf("first round already reports changes: %v", deltas[0].StatusChanged)
	}
	if len(deltas[1].StatusChanged) == 0 {
		t.Error("outage between rounds not detected as status change")
	}
	// Later rounds measure through the outage: failures/loss recorded, the
	// monitor keeps running (fault tolerance).
	if deltas[1].StatsStored == 0 {
		t.Error("second round stored nothing despite fault tolerance")
	}
}

func TestMonitorValidation(t *testing.T) {
	s := suite(t, 52)
	if _, err := s.Monitor(context.Background(), MonitorOpts{Campaigns: 0}); err == nil {
		t.Error("zero campaigns accepted")
	}
}
