package measure

import (
	"context"
	"fmt"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
)

// CollectOpts tunes the paths-collection stage.
type CollectOpts struct {
	// MaxPaths is the showpaths -m limit; the paper uses 40.
	MaxPaths int
	// HopSlack keeps paths with at most min+HopSlack hops; the paper
	// "decided to retain only paths with a number of hops at most equal to
	// the minimum required plus one" (§5.2).
	HopSlack int
	// Probe fills path status via SCMP probes.
	Probe bool
}

func (o CollectOpts) withDefaults() CollectOpts {
	if o.MaxPaths == 0 {
		o.MaxPaths = 40
	}
	if o.HopSlack == 0 {
		o.HopSlack = 1
	}
	return o
}

// Validate implements the package's option convention.
func (o CollectOpts) Validate() error {
	if o.MaxPaths < 1 {
		return fmt.Errorf("collect needs MaxPaths >= 1, have %d", o.MaxPaths)
	}
	if o.HopSlack < 0 {
		return fmt.Errorf("collect HopSlack %d is negative", o.HopSlack)
	}
	return nil
}

// CollectReport summarises a collection run.
type CollectReport struct {
	ServersQueried  int
	PathsDiscovered int
	PathsRetained   int
	PathsDeleted    int
	// Errors maps server ids to the error encountered (server failure
	// tolerance, §4.1.2).
	Errors map[int]error
}

// CollectPaths is the collect_paths stage: query availableServers, run
// showpaths per destination, filter by the hop-slack rule, pre-process into
// documents, insert, and delete paths that are no longer available (§5.2).
// Cancellation is honored between destinations: already-collected paths are
// kept and ctx's error is returned.
func CollectPaths(ctx context.Context, db *docdb.DB, d *sciond.Daemon, opts CollectOpts) (CollectReport, error) {
	opts = opts.withDefaults()
	rep := CollectReport{Errors: map[int]error{}}
	if err := opts.Validate(); err != nil {
		return rep, fmt.Errorf("measure: %w", err)
	}

	servers, err := Servers(db)
	if err != nil {
		return rep, err
	}
	if len(servers) == 0 {
		return rep, fmt.Errorf("measure: availableServers is empty; seed it first")
	}

	col := db.Collection(ColPaths)
	for _, srv := range servers {
		if err := ctx.Err(); err != nil {
			if ferr := db.Flush(); ferr != nil {
				return rep, ferr
			}
			return rep, fmt.Errorf("measure: collect cancelled: %w", err)
		}
		rep.ServersQueried++
		paths, err := d.ShowPaths(srv.Address.IA, sciond.ShowPathsOpts{
			MaxPaths: opts.MaxPaths, Extended: true, Probe: opts.Probe,
		})
		if err != nil {
			// A failing destination must not stop the run (§4.1.2).
			rep.Errors[srv.ID] = err
			continue
		}
		rep.PathsDiscovered += len(paths)
		paths = FilterByHopSlack(paths, opts.HopSlack)

		// Pre-process into documents (§5.2 "Data Pre-processing").
		docs := make([]docdb.Document, 0, len(paths))
		liveIDs := map[string]bool{}
		for i, p := range paths {
			id := PathID(srv.ID, i)
			liveIDs[id] = true
			docs = append(docs, pathDocument(id, srv.ID, i, p))
		}

		// Replace this destination's paths: delete stale ones, insert new
		// ("no longer available paths for one destination are deleted").
		for _, old := range col.Find(docdb.Query{Filter: docdb.Eq(FServerID, srv.ID), Project: []string{FServerID}}) {
			if !liveIDs[old.ID()] {
				rep.PathsDeleted++
			}
		}
		col.Delete(docdb.Eq(FServerID, srv.ID))
		if err := col.InsertMany(docs); err != nil {
			rep.Errors[srv.ID] = err
			continue
		}
		rep.PathsRetained += len(docs)
	}
	if err := db.Flush(); err != nil {
		return rep, err
	}
	return rep, nil
}

// FilterByHopSlack keeps paths with hops <= min+slack, the paper's
// "overly lengthy" exclusion rule. The input must be hop-sorted (showpaths
// order); order is preserved.
func FilterByHopSlack(paths []*pathmgr.Path, slack int) []*pathmgr.Path {
	if len(paths) == 0 {
		return paths
	}
	min := paths[0].NumHops()
	for _, p := range paths[1:] {
		if p.NumHops() < min {
			min = p.NumHops()
		}
	}
	out := paths[:0:0]
	for _, p := range paths {
		if p.NumHops() <= min+slack {
			out = append(out, p)
		}
	}
	return out
}

// pathDocument encodes one path for the paths collection (Fig 3).
func pathDocument(id string, serverID, index int, p *pathmgr.Path) docdb.Document {
	isds := make([]any, 0, 4)
	for _, isd := range p.ISDSet() {
		isds = append(isds, fmt.Sprintf("%d", isd))
	}
	return docdb.Document{
		"_id":        id,
		FServerID:    serverID,
		FPathIndex:   index,
		FHops:        p.NumHops(),
		FSequence:    pathmgr.PathSequence(p).String(),
		FISDs:        isds,
		FMTU:         p.MTU,
		FMinLatency:  float64(p.MinLatency) / float64(time.Millisecond),
		FStatus:      p.Status,
		FFingerprint: p.Fingerprint(),
	}
}

// PathDoc is a decoded paths document.
type PathDoc struct {
	ID       string
	ServerID int
	Index    int
	Hops     int
	Sequence pathmgr.Sequence
	ISDs     []string
	MTU      int
}

// PathsForServer decodes the stored paths of one destination in index order.
func PathsForServer(db *docdb.DB, serverID int) ([]PathDoc, error) {
	return decodePathDocs(db.Collection(ColPaths).Find(docdb.Query{
		Filter: docdb.Eq(FServerID, serverID),
		SortBy: FPathIndex,
	}))
}

// AllPaths decodes every stored path of every destination. The result is
// ordered by (path_index, _id) globally, so each destination's subsequence
// is in exactly PathsForServer order — the property the selection engine's
// snapshot cache relies on to reproduce per-server candidate order without
// one query per destination.
func AllPaths(db *docdb.DB) ([]PathDoc, error) {
	return decodePathDocs(db.Collection(ColPaths).Find(docdb.Query{SortBy: FPathIndex}))
}

func decodePathDocs(docs []docdb.Document) ([]PathDoc, error) {
	out := make([]PathDoc, 0, len(docs))
	for _, d := range docs {
		pd := PathDoc{ID: d.ID()}
		pd.ServerID, _ = asInt(d[FServerID])
		pd.Index, _ = asInt(d[FPathIndex])
		pd.Hops, _ = asInt(d[FHops])
		pd.MTU, _ = asInt(d[FMTU])
		seqStr, _ := d[FSequence].(string)
		seq, err := pathmgr.ParseSequence(seqStr)
		if err != nil {
			return nil, fmt.Errorf("measure: path %s: %w", pd.ID, err)
		}
		pd.Sequence = seq
		switch arr := d[FISDs].(type) {
		case []any:
			for _, v := range arr {
				pd.ISDs = append(pd.ISDs, fmt.Sprint(v))
			}
		case []string:
			pd.ISDs = append(pd.ISDs, arr...)
		}
		out = append(out, pd)
	}
	return out, nil
}
