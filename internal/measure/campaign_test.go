package measure

import (
	"context"
	"errors"
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/docdb"
)

// fastCampaignOpts keeps campaign tests quick: latency-only measurements
// over a 3-destination subset with sub-millisecond retry backoffs.
func fastCampaignOpts(workers int) RunOpts {
	opts := RunOpts{
		Iterations:    2,
		ServerIDs:     []int{1, 2, 3},
		PingCount:     5,
		PingInterval:  time.Millisecond,
		SkipBandwidth: true,
	}
	opts.Campaign.Workers = workers
	opts.Campaign.Retry.BaseBackoff = 100 * time.Microsecond
	opts.Campaign.Retry.MaxBackoff = time.Millisecond
	return opts
}

// statsByID returns every paths_stats document sorted by _id, the
// schedule-independent view two equivalent runs must agree on.
func statsByID(t *testing.T, db *docdb.DB) []docdb.Document {
	t.Helper()
	docs := db.Collection(ColStats).Find(docdb.Query{SortBy: "_id"})
	sort.Slice(docs, func(i, j int) bool { return docs[i].ID() < docs[j].ID() })
	return docs
}

func TestCampaignDeterminismAcrossWorkerCounts(t *testing.T) {
	const seed = 7
	reports := map[int]RunReport{}
	stats := map[int][]docdb.Document{}
	for _, workers := range []int{1, 4} {
		s := suite(t, seed)
		rep, err := s.Run(context.Background(), fastCampaignOpts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.StatsStored == 0 {
			t.Fatalf("workers=%d stored no stats", workers)
		}
		reports[workers] = rep
		stats[workers] = statsByID(t, s.DB)
	}
	if !reflect.DeepEqual(reports[1], reports[4]) {
		t.Errorf("reports differ:\n  1 worker:  %+v\n  4 workers: %+v", reports[1], reports[4])
	}
	if len(stats[1]) != len(stats[4]) {
		t.Fatalf("stats count differs: %d vs %d", len(stats[1]), len(stats[4]))
	}
	for i := range stats[1] {
		if !reflect.DeepEqual(stats[1][i], stats[4][i]) {
			t.Fatalf("stats doc %d differs:\n  1 worker:  %v\n  4 workers: %v",
				i, stats[1][i], stats[4][i])
		}
	}
}

func TestCampaignResumeAfterInterrupt(t *testing.T) {
	const seed = 11

	// Reference: the same campaign, uninterrupted.
	ref := suite(t, seed)
	refRep, err := ref.Run(context.Background(), fastCampaignOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	want := statsByID(t, ref.DB)

	// Interrupted run: a SignStats hook cancels the context while the first
	// cell is being stored; in-flight cells finish and checkpoint, queued
	// cells are skipped.
	s := suite(t, seed)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var signed atomic.Int64
	s.SignStats = func(docdb.Document) error {
		if signed.Add(1) == 1 {
			cancel()
		}
		return nil
	}
	_, err = s.Run(ctx, fastCampaignOpts(2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	partial := len(statsByID(t, s.DB))
	if partial == 0 || partial >= len(want) {
		t.Fatalf("interrupt stored %d stats, want partial progress (full run stores %d)", partial, len(want))
	}
	checkpointed := s.DB.Collection(ColProgress).Count() - 1 // minus the meta doc
	if checkpointed == 0 {
		t.Fatal("no cells checkpointed before interrupt")
	}

	// Resume: remaining cells only, no re-measuring, no duplicates.
	s.SignStats = func(docdb.Document) error { signed.Add(1); return nil }
	opts := fastCampaignOpts(2)
	opts.Campaign.Resume = true
	rep, err := s.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if rep.SkippedCells != checkpointed {
		t.Errorf("resume skipped %d cells, want the %d checkpointed ones", rep.SkippedCells, checkpointed)
	}
	rep.SkippedCells = 0 // the one field that records the interruption itself
	if !reflect.DeepEqual(rep, refRep) {
		t.Errorf("resumed report differs from uninterrupted:\n  resumed:       %+v\n  uninterrupted: %+v", rep, refRep)
	}
	got := statsByID(t, s.DB)
	if len(got) != len(want) {
		t.Fatalf("resumed DB has %d stats, uninterrupted has %d (duplicates or gaps)", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("stats doc %d differs after resume:\n  resumed:       %v\n  uninterrupted: %v",
				i, got[i], want[i])
		}
	}
}

func TestCampaignResumeRejectsChangedConfig(t *testing.T) {
	s := suite(t, 13)
	opts := fastCampaignOpts(2)
	opts.Campaign.Name = "stable-name"
	if _, err := s.Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	opts.PingCount++ // changes the fingerprint
	opts.Campaign.Resume = true
	if _, err := s.Run(context.Background(), opts); err == nil {
		t.Error("resume with changed config accepted")
	}
	if _, err := s.Run(context.Background(), func() RunOpts {
		o := fastCampaignOpts(2)
		o.Campaign.Name = "never-ran"
		o.Campaign.Resume = true
		return o
	}()); err == nil {
		t.Error("resume of unknown campaign accepted")
	}
}

func TestCampaignRetryExhaustion(t *testing.T) {
	s := suite(t, 17)
	// Collect paths once, then corrupt destination 1's stored sequences so
	// every measurement attempt for it fails at the cell level.
	seedOpts := fastCampaignOpts(1)
	seedOpts.Iterations = 1
	if _, err := s.Run(context.Background(), seedOpts); err != nil {
		t.Fatal(err)
	}
	all := docdb.FilterFunc(func(docdb.Document) bool { return true })
	s.DB.Collection(ColPaths).Update(docdb.Eq(FServerID, 1), docdb.Document{FSequence: "not a sequence"})
	s.DB.Collection(ColStats).Delete(all)
	s.DB.Collection(ColProgress).Delete(all)

	opts := fastCampaignOpts(2)
	opts.Skip = true
	opts.Campaign.Retry.MaxAttempts = 2
	rep, err := s.Run(context.Background(), opts)
	if err != nil {
		t.Fatalf("campaign with failing destination errored instead of tolerating: %v", err)
	}
	if rep.Failures != opts.Iterations {
		t.Errorf("failures = %d, want one per iteration of the broken destination (%d)",
			rep.Failures, opts.Iterations)
	}
	if rep.StatsStored == 0 {
		t.Error("healthy destinations stored no stats")
	}
	ckpt := s.DB.Collection(ColProgress).Get(CellID("c17-2x3", 0, 1))
	if ckpt == nil {
		t.Fatal("failed cell was not checkpointed")
	}
	if attempts, _ := asInt(ckpt[FAttempts]); attempts != 2 {
		t.Errorf("failed cell recorded %v attempts, want MaxAttempts (2)", ckpt[FAttempts])
	}
}

func TestRunOptsValidate(t *testing.T) {
	bad := []func(*RunOpts){
		func(o *RunOpts) { o.Iterations = -1 },
		func(o *RunOpts) { o.PingCount = -1 },
		func(o *RunOpts) { o.BwDuration = -time.Second },
		func(o *RunOpts) { o.ServerIDs = []int{0} },
		func(o *RunOpts) { o.Campaign.Workers = -1 },
		func(o *RunOpts) { o.Campaign.Resume = true }, // workers 0
		func(o *RunOpts) { o.Campaign.IterationStride = -time.Hour },
		func(o *RunOpts) { o.Campaign.Retry.MaxAttempts = -1 },
		func(o *RunOpts) { o.Campaign.Retry.JitterFrac = 2 },
		func(o *RunOpts) {
			o.Campaign.Retry.BaseBackoff = time.Second
			o.Campaign.Retry.MaxBackoff = time.Millisecond
		},
		func(o *RunOpts) { o.Collect.MaxPaths = -1 },
	}
	s := suite(t, 1)
	for i, mutate := range bad {
		opts := RunOpts{}
		opts = opts.withDefaults()
		mutate(&opts)
		if err := opts.Validate(); err == nil {
			t.Errorf("case %d: bad options validated", i)
		}
		if _, err := s.Run(context.Background(), opts); err == nil {
			t.Errorf("case %d: Run accepted bad options", i)
		}
	}
}

func TestSequentialRunHonorsCancellation(t *testing.T) {
	s := suite(t, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.Run(ctx, fastCampaignOpts(0))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential run with cancelled ctx returned %v, want context.Canceled", err)
	}
	if _, err := CollectPaths(ctx, s.DB, s.Daemon, CollectOpts{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("CollectPaths with cancelled ctx returned %v, want context.Canceled", err)
	}
}

func TestSequentialMatchesLegacyBehaviour(t *testing.T) {
	// Workers 0 must keep the pre-engine semantics: measurements advance the
	// suite's own clock and the report mirrors what was stored.
	s := suite(t, 23)
	opts := fastCampaignOpts(0)
	rep, err := s.Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.StatsStored == 0 || rep.PathsTested == 0 {
		t.Fatalf("sequential run stored nothing: %+v", rep)
	}
	if got := s.Daemon.Network().Now(); got < rep.SimulatedTime {
		t.Errorf("shared clock at %v, want >= the run's simulated time %v", got, rep.SimulatedTime)
	}
	if n := s.DB.Collection(ColStats).Count(); n != rep.StatsStored {
		t.Errorf("collection has %d stats, report says %d", n, rep.StatsStored)
	}
	if s.DB.Collection(ColProgress).Count() != 0 {
		t.Error("sequential run wrote campaign checkpoints")
	}
}
