package measure

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"github.com/upin/scionpath/internal/docdb"
)

// ExportStatsCSV writes the paths_stats collection (optionally filtered to
// one server) as CSV, the interchange format for external analysis tools —
// the role the paper's own plotting pipeline plays downstream of MongoDB.
// Columns are stable: the mandatory identity columns first, then the
// union of all metric fields in sorted order; absent values are empty.
func ExportStatsCSV(db *docdb.DB, w io.Writer, serverID int) (int, error) {
	var filter docdb.Filter
	if serverID > 0 {
		filter = docdb.Eq(FServerID, serverID)
	}
	docs := db.Collection(ColStats).Find(docdb.Query{Filter: filter, SortBy: "_id"})

	identity := []string{"_id", FPathID, FServerID, FTimestamp, FHops}
	inIdentity := map[string]bool{}
	for _, c := range identity {
		inIdentity[c] = true
	}
	metricSet := map[string]bool{}
	for _, d := range docs {
		for k := range d {
			if !inIdentity[k] && k != FISDs {
				metricSet[k] = true
			}
		}
	}
	metrics := make([]string, 0, len(metricSet))
	for k := range metricSet {
		metrics = append(metrics, k)
	}
	sort.Strings(metrics)
	header := append(append([]string{}, identity...), "isds")
	header = append(header, metrics...)

	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return 0, err
	}
	rows := 0
	for _, d := range docs {
		row := make([]string, 0, len(header))
		for _, c := range identity {
			row = append(row, cell(d[c]))
		}
		row = append(row, isdCell(d[FISDs]))
		for _, c := range metrics {
			if v, ok := d[c]; ok {
				row = append(row, cell(v))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return rows, err
		}
		rows++
	}
	cw.Flush()
	return rows, cw.Error()
}

func cell(v any) string {
	switch t := v.(type) {
	case nil:
		return ""
	case float64:
		return fmt.Sprintf("%g", t)
	default:
		return fmt.Sprint(t)
	}
}

func isdCell(v any) string {
	switch arr := v.(type) {
	case []any:
		s := ""
		for i, e := range arr {
			if i > 0 {
				s += "|"
			}
			s += fmt.Sprint(e)
		}
		return s
	case []string:
		s := ""
		for i, e := range arr {
			if i > 0 {
				s += "|"
			}
			s += e
		}
		return s
	default:
		return ""
	}
}
