package measure

import (
	"bytes"
	"context"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestExportStatsCSV(t *testing.T) {
	s := suite(t, 70)
	if _, err := s.Run(context.Background(), RunOpts{
		Iterations: 2, ServerIDs: []int{1},
		PingCount: 3, PingInterval: 5 * time.Millisecond,
		BwDuration: 200 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	rows, err := ExportStatsCSV(s.DB, &buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rows != s.DB.Collection(ColStats).Count() {
		t.Errorf("exported %d rows, stored %d", rows, s.DB.Collection(ColStats).Count())
	}

	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != rows+1 {
		t.Fatalf("%d records incl. header, want %d", len(records), rows+1)
	}
	header := records[0]
	want := map[string]bool{"_id": true, FPathID: true, FAvgLatency: true, FBwUpMTU: true, "isds": true}
	for _, col := range header {
		delete(want, col)
	}
	if len(want) != 0 {
		t.Errorf("header missing columns %v: %v", want, header)
	}
	// All rows have the same width.
	for i, r := range records[1:] {
		if len(r) != len(header) {
			t.Fatalf("row %d has %d cells, header %d", i, len(r), len(header))
		}
	}
	// The ISD set uses the pipe separator.
	if !strings.Contains(buf.String(), "16|17") {
		t.Errorf("ISD cell missing:\n%s", firstLines(buf.String(), 3))
	}
}

func TestExportStatsCSVFiltered(t *testing.T) {
	s := suite(t, 71)
	if _, err := s.Run(context.Background(), RunOpts{
		Iterations: 1, ServerIDs: []int{1, 2},
		PingCount: 2, PingInterval: 2 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		t.Fatal(err)
	}
	var all, one bytes.Buffer
	nAll, err := ExportStatsCSV(s.DB, &all, 0)
	if err != nil {
		t.Fatal(err)
	}
	nOne, err := ExportStatsCSV(s.DB, &one, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nOne == 0 || nOne >= nAll {
		t.Errorf("filtered export %d of %d rows", nOne, nAll)
	}
}

func TestExportStatsCSVEmpty(t *testing.T) {
	s := suite(t, 72)
	var buf bytes.Buffer
	rows, err := ExportStatsCSV(s.DB, &buf, 0)
	if err != nil || rows != 0 {
		t.Fatalf("empty export: %d rows, %v", rows, err)
	}
	// Header only.
	if lines := strings.Count(strings.TrimSpace(buf.String()), "\n"); lines != 0 {
		t.Errorf("expected header only, got:\n%s", buf.String())
	}
}

func firstLines(s string, n int) string {
	parts := strings.SplitN(s, "\n", n+1)
	if len(parts) > n {
		parts = parts[:n]
	}
	return strings.Join(parts, "\n")
}
