package measure

import (
	"context"
	"strings"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
)

func suite(t testing.TB, seed int64) *Suite {
	t.Helper()
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: seed})
	d, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		t.Fatal(err)
	}
	return &Suite{DB: docdb.MustOpen(), Daemon: d}
}

func TestSeedServers(t *testing.T) {
	s := suite(t, 1)
	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		t.Fatal(err)
	}
	// Paper: 21 destinations, ids 1..21.
	col := s.DB.Collection(ColServers)
	if col.Count() != 21 {
		t.Fatalf("%d servers, want 21", col.Count())
	}
	servers, err := Servers(s.DB)
	if err != nil {
		t.Fatal(err)
	}
	for i, srv := range servers {
		if srv.ID != i+1 {
			t.Errorf("server %d has id %d, want progressive 1..21", i, srv.ID)
		}
		if srv.Country == "" || srv.Operator == "" {
			t.Errorf("server %d missing metadata: %+v", srv.ID, srv)
		}
	}
	// Idempotent.
	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		t.Fatal(err)
	}
	if col.Count() != 21 {
		t.Errorf("re-seeding duplicated servers: %d", col.Count())
	}
}

func TestServersErrors(t *testing.T) {
	db := docdb.MustOpen()
	db.Collection(ColServers).Insert(docdb.Document{"_id": "1", FAddress: "bogus"})
	if _, err := Servers(db); err == nil {
		t.Error("bogus address accepted")
	}
	db2 := docdb.MustOpen()
	db2.Collection(ColServers).Insert(docdb.Document{"_id": "1", FAddress: "16-ffaa:0:1002,[1.2.3.4]"})
	if _, err := Servers(db2); err == nil {
		t.Error("missing server_id accepted")
	}
}

func TestFilterByHopSlack(t *testing.T) {
	mk := func(hops int) *pathmgr.Path {
		p := &pathmgr.Path{}
		for i := 0; i < hops; i++ {
			p.Hops = append(p.Hops, pathmgr.Hop{})
		}
		return p
	}
	in := []*pathmgr.Path{mk(6), mk(6), mk(7), mk(8), mk(9)}
	out := FilterByHopSlack(in, 1)
	if len(out) != 3 {
		t.Fatalf("retained %d, want 3 (6,6,7)", len(out))
	}
	for _, p := range out {
		if p.NumHops() > 7 {
			t.Errorf("retained %d-hop path", p.NumHops())
		}
	}
	if got := FilterByHopSlack(nil, 1); len(got) != 0 {
		t.Error("empty input")
	}
	if got := FilterByHopSlack(in, 3); len(got) != 5 {
		t.Errorf("slack 3 retained %d", len(got))
	}
}

func TestCollectPaths(t *testing.T) {
	s := suite(t, 2)
	if err := SeedServers(s.DB, s.Daemon.Topology()); err != nil {
		t.Fatal(err)
	}
	rep, err := CollectPaths(context.Background(), s.DB, s.Daemon, CollectOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServersQueried != 21 {
		t.Errorf("queried %d servers", rep.ServersQueried)
	}
	if len(rep.Errors) != 0 {
		t.Errorf("collection errors: %v", rep.Errors)
	}
	if rep.PathsRetained == 0 || rep.PathsRetained > rep.PathsDiscovered {
		t.Errorf("retained %d of %d", rep.PathsRetained, rep.PathsDiscovered)
	}

	// Stored paths respect the hop <= min+1 rule per destination.
	servers, _ := Servers(s.DB)
	for _, srv := range servers {
		pds, err := PathsForServer(s.DB, srv.ID)
		if err != nil {
			t.Fatal(err)
		}
		if len(pds) == 0 {
			t.Errorf("server %d has no stored paths", srv.ID)
			continue
		}
		min := pds[0].Hops
		for _, pd := range pds {
			if pd.Hops < min {
				min = pd.Hops
			}
		}
		for _, pd := range pds {
			if pd.Hops > min+1 {
				t.Errorf("server %d path %s has %d hops, min %d", srv.ID, pd.ID, pd.Hops, min)
			}
			if !strings.HasPrefix(pd.ID, PathID(srv.ID, 0)[:2]) && pd.ServerID != srv.ID {
				t.Errorf("path id %s does not belong to server %d", pd.ID, srv.ID)
			}
			if len(pd.ISDs) == 0 || pd.MTU == 0 || len(pd.Sequence) != pd.Hops {
				t.Errorf("path %s incompletely stored: %+v", pd.ID, pd)
			}
		}
	}
}

func TestCollectPathsRequiresSeed(t *testing.T) {
	s := suite(t, 3)
	if _, err := CollectPaths(context.Background(), s.DB, s.Daemon, CollectOpts{}); err == nil {
		t.Error("collection without seeded servers accepted")
	}
}

func TestCollectPathsIdempotentAndCleansStale(t *testing.T) {
	s := suite(t, 4)
	SeedServers(s.DB, s.Daemon.Topology())
	if _, err := CollectPaths(context.Background(), s.DB, s.Daemon, CollectOpts{}); err != nil {
		t.Fatal(err)
	}
	n1 := s.DB.Collection(ColPaths).Count()
	// Inject a stale path that a re-collection must remove.
	s.DB.Collection(ColPaths).Insert(docdb.Document{
		"_id": PathID(1, 999), FServerID: 1, FPathIndex: 999, FHops: 99,
		FSequence: "", FISDs: []any{}, FMTU: 0,
	})
	rep, err := CollectPaths(context.Background(), s.DB, s.Daemon, CollectOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if s.DB.Collection(ColPaths).Count() != n1 {
		t.Errorf("path count changed across identical collections: %d vs %d",
			s.DB.Collection(ColPaths).Count(), n1)
	}
	if rep.PathsDeleted == 0 {
		t.Error("stale path not counted as deleted")
	}
	if s.DB.Collection(ColPaths).Get(PathID(1, 999)) != nil {
		t.Error("stale path survived re-collection")
	}
}

func TestRunSomeOnly(t *testing.T) {
	s := suite(t, 5)
	rep, err := s.Run(context.Background(), RunOpts{
		Iterations: 2, SomeOnly: true,
		PingCount: 5, PingInterval: 10 * time.Millisecond,
		BwDuration: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Destinations != 1 {
		t.Errorf("tested %d destinations, want 1 (--some_only)", rep.Destinations)
	}
	if rep.Iterations != 2 {
		t.Errorf("iterations %d", rep.Iterations)
	}
	if rep.StatsStored == 0 {
		t.Fatal("no stats stored")
	}
	// Each stored stat has the mandatory fields.
	for _, d := range s.DB.Collection(ColStats).Find(docdb.Query{}) {
		if _, ok := d[FLoss]; !ok {
			t.Errorf("stat %s missing loss", d.ID())
		}
		if _, ok := d[FBwUp64]; !ok {
			t.Errorf("stat %s missing 64B upstream bandwidth", d.ID())
		}
		if _, ok := d[FBwDownMTU]; !ok {
			t.Errorf("stat %s missing MTU downstream bandwidth", d.ID())
		}
		if _, ok := d[FISDs]; !ok {
			t.Errorf("stat %s missing ISD set", d.ID())
		}
	}
	// Two iterations of the same path set -> stats count is twice the
	// destination's path count.
	pds, _ := PathsForServer(s.DB, 1)
	if rep.StatsStored != 2*len(pds) {
		t.Errorf("stored %d stats for %d paths x 2 iterations", rep.StatsStored, len(pds))
	}
}

func TestRunSkipRequiresCollectedPaths(t *testing.T) {
	s := suite(t, 6)
	rep, err := s.Run(context.Background(), RunOpts{
		Iterations: 1, Skip: true, SomeOnly: true,
		PingCount: 2, PingInterval: time.Millisecond,
		SkipBandwidth: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// --skip without prior collection: nothing to test, but no crash.
	if rep.StatsStored != 0 || rep.PathsTested != 0 {
		t.Errorf("skip run tested %d stored %d", rep.PathsTested, rep.StatsStored)
	}
}

func TestRunServerSubset(t *testing.T) {
	s := suite(t, 7)
	rep, err := s.Run(context.Background(), RunOpts{
		Iterations: 1, ServerIDs: []int{2, 5},
		PingCount: 3, PingInterval: 5 * time.Millisecond,
		SkipBandwidth: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Destinations != 2 {
		t.Errorf("tested %d destinations, want 2", rep.Destinations)
	}
	ids := s.DB.Collection(ColStats).Distinct(FServerID, nil)
	if len(ids) != 2 {
		t.Errorf("stats cover servers %v", ids)
	}
}

func TestRunRecordsLossDuringEpisode(t *testing.T) {
	s := suite(t, 8)
	// Outage on ETHZ-AP: every path is affected from the start.
	if err := s.Daemon.Network().ScheduleEpisode(simnet.Episode{
		IA: topology.ETHZAP, Start: 0, End: 24 * time.Hour, DropProb: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), RunOpts{
		Iterations: 1, SomeOnly: true,
		PingCount: 3, PingInterval: 5 * time.Millisecond,
		SkipBandwidth: true,
	}); err != nil {
		t.Fatal(err)
	}
	for _, d := range s.DB.Collection(ColStats).Find(docdb.Query{}) {
		loss, _ := d[FLoss].(float64)
		if loss != 100 {
			t.Errorf("stat %s loss %v, want 100", d.ID(), loss)
		}
		if _, hasLatency := d[FAvgLatency]; hasLatency {
			t.Errorf("stat %s has latency despite total loss", d.ID())
		}
	}
}

func TestRunClockAdvancesSequentially(t *testing.T) {
	s := suite(t, 9)
	before := s.Daemon.Network().Now()
	if _, err := s.Run(context.Background(), RunOpts{
		Iterations: 1, SomeOnly: true,
		PingCount: 2, PingInterval: 10 * time.Millisecond,
		BwDuration: 200 * time.Millisecond,
	}); err != nil {
		t.Fatal(err)
	}
	// Measurements are "carried out in succession" (§6.3): the clock must
	// have advanced by at least paths * (ping + 4 bw flows).
	pds, _ := PathsForServer(s.DB, 1)
	// N pings advance (N-1)*interval; 4 bandwidth flows advance 4*duration.
	minPerPath := 1*10*time.Millisecond + 4*200*time.Millisecond
	if got := s.Daemon.Network().Now() - before; got < time.Duration(len(pds))*minPerPath {
		t.Errorf("clock advanced %v for %d paths, want >= %v", got, len(pds),
			time.Duration(len(pds))*minPerPath)
	}
}

func TestStatsIDFormat(t *testing.T) {
	if PathID(2, 15) != "2_15" {
		t.Errorf("PathID: %s", PathID(2, 15))
	}
	id := StatsID("2_15", 1500*time.Millisecond)
	if id != "2_15@1500" {
		t.Errorf("StatsID: %s", id)
	}
}
