// Path-discovery benchmark suite: discovery (beaconing) and segment
// combination at 35 / 1000 / 5000 ASes. cmd/benchjson records it into the
// BENCH_pathdisc.json trajectory (AS-count-labelled entries):
//
//	go run ./cmd/benchjson -label after -bench BenchmarkPathDisc \
//	    -pkg . -out BENCH_pathdisc.json
//
// See docs/PATHDISC.md for the generator recipe and the cache contract the
// cold/cached split measures.
package scionpath

import (
	"fmt"
	"sync"
	"testing"

	"github.com/upin/scionpath/internal/addr"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/topology"
)

// pathDiscSizes are the world sizes the trajectory tracks.
var pathDiscSizes = []int{35, 1000, 5000}

// pathDiscSpec returns the generator recipe for a benchmark world size.
// 35 is the paper's SCIONLab replica (DefaultWorld, not generated).
func pathDiscSpec(ases int) topology.GenerateSpec {
	switch ases {
	case 1000:
		return topology.GenerateSpec{
			Seed: 1000, ISDs: 20, CoresPerISD: 2, NonCorePerISD: 48,
			MaxChildren: 8, CoreDegree: 4,
		}
	case 5000:
		return topology.GenerateSpec{
			Seed: 5000, ISDs: 25, CoresPerISD: 4, NonCorePerISD: 196,
			MaxChildren: 12, CoreDegree: 4,
		}
	default:
		panic(fmt.Sprintf("no pathdisc spec for %d ASes", ases))
	}
}

// pathDiscWorld is a benchmark topology plus a deterministic sample of
// leaf-to-leaf query pairs.
type pathDiscWorld struct {
	topo  *topology.Topology
	pairs [][2]addr.IA
}

var (
	pathDiscMu     sync.Mutex
	pathDiscWorlds = map[int]*pathDiscWorld{}
)

// pathDiscSetup builds (once per process) the benchmark world of the given
// size and samples 8 query pairs spread across its servers.
func pathDiscSetup(b *testing.B, ases int) *pathDiscWorld {
	b.Helper()
	pathDiscMu.Lock()
	defer pathDiscMu.Unlock()
	if w, ok := pathDiscWorlds[ases]; ok {
		return w
	}
	var topo *topology.Topology
	if ases == 35 {
		// The paper's 35-AS SCIONLab replica (plus the experimenters' MY_AS).
		topo = topology.DefaultWorld()
	} else {
		t, err := topology.Generate(pathDiscSpec(ases))
		if err != nil {
			b.Fatal(err)
		}
		topo = t
		if got := len(topo.ASes()); got != ases {
			b.Fatalf("world has %d ASes, want %d", got, ases)
		}
	}
	servers := topo.Servers()
	const nPairs = 8
	var pairs [][2]addr.IA
	step := len(servers)/nPairs + 1
	for i := 0; len(pairs) < nPairs && i < 4*nPairs; i++ {
		src := servers[(i*step)%len(servers)].IA
		dst := servers[(i*step+len(servers)/2)%len(servers)].IA
		if src != dst {
			pairs = append(pairs, [2]addr.IA{src, dst})
		}
	}
	w := &pathDiscWorld{topo: topo, pairs: pairs}
	pathDiscWorlds[ases] = w
	return w
}

// BenchmarkPathDiscDiscover measures a full beaconing run (core +
// intra-ISD) per world size.
func BenchmarkPathDiscDiscover(b *testing.B) {
	for _, ases := range pathDiscSizes {
		w := pathDiscSetup(b, ases)
		b.Run(fmt.Sprintf("ases=%d", ases), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				reg := segment.Discover(w.topo, segment.Options{})
				if len(reg.DownByLeaf) == 0 {
					b.Fatal("no segments discovered")
				}
			}
		})
	}
}

// BenchmarkPathDiscCombineCold measures first-query combination cost: a
// fresh combiner (index build included) answering the sampled pairs once.
func BenchmarkPathDiscCombineCold(b *testing.B) {
	for _, ases := range pathDiscSizes {
		w := pathDiscSetup(b, ases)
		reg := segment.Discover(w.topo, segment.Options{})
		b.Run(fmt.Sprintf("ases=%d", ases), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := pathmgr.NewCombiner(w.topo, reg)
				for _, pr := range w.pairs {
					if _, err := c.Paths(pr[0], pr[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkPathDiscCombineCached measures steady-state serving: the same
// combiner answering the same pairs repeatedly (after the rebuild this is a
// combination-cache hit returning cloned paths).
func BenchmarkPathDiscCombineCached(b *testing.B) {
	for _, ases := range pathDiscSizes {
		w := pathDiscSetup(b, ases)
		reg := segment.Discover(w.topo, segment.Options{})
		c := pathmgr.NewCombiner(w.topo, reg)
		for _, pr := range w.pairs { // warm
			if _, err := c.Paths(pr[0], pr[1]); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("ases=%d", ases), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, pr := range w.pairs {
					if _, err := c.Paths(pr[0], pr[1]); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
