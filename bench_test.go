// Benchmark harness: one benchmark per figure/table of the paper's
// evaluation (§6), plus micro-benchmarks for the substrates. Run with:
//
//	go test -bench=. -benchmem .
package scionpath

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/upin/scionpath/internal/auth"
	"github.com/upin/scionpath/internal/bwtest"
	"github.com/upin/scionpath/internal/docdb"
	"github.com/upin/scionpath/internal/experiments"
	"github.com/upin/scionpath/internal/measure"
	"github.com/upin/scionpath/internal/pathmgr"
	"github.com/upin/scionpath/internal/sciond"
	"github.com/upin/scionpath/internal/scmp"
	"github.com/upin/scionpath/internal/segment"
	"github.com/upin/scionpath/internal/selection"
	"github.com/upin/scionpath/internal/simnet"
	"github.com/upin/scionpath/internal/topology"
	"github.com/upin/scionpath/internal/upin"
)

// --- Figure/table benchmarks -------------------------------------------

// BenchmarkFig4Reachability regenerates Fig 4: server reachability from
// MY_AS (#destinations per minimum hop count, avg path length, %<=6 hops).
func BenchmarkFig4Reachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.Fig4(env)
		if err != nil {
			b.Fatal(err)
		}
		if res.Reachable == 0 {
			b.Fatal("no reachable destinations")
		}
	}
}

// BenchmarkFig5LatencyIreland regenerates Fig 5: per-path latency box
// plots to AWS Ireland, 6-hop vs 7-hop groups, three latency layers.
func BenchmarkFig5LatencyIreland(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.Fig5(context.Background(), env, experiments.Fast)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Boxes) == 0 {
			b.Fatal("no boxes")
		}
	}
}

// BenchmarkFig6ISDGrouping regenerates Fig 6: latency per ISD set grouped
// by hop count, with and without long-distance paths.
func BenchmarkFig6ISDGrouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.Fig6(context.Background(), env, experiments.Fast)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.All) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkFig7Bandwidth12 regenerates Fig 7: achieved bandwidth per path
// to the Germany server at a 12 Mbps target (64B vs MTU, up vs down).
func BenchmarkFig7Bandwidth12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.Fig7(context.Background(), env, experiments.Fast)
		if err != nil {
			b.Fatal(err)
		}
		if !(res.Mean64Up < res.MeanMTUUp) {
			b.Fatalf("Fig 7 shape violated: 64B up %.1f !< MTU up %.1f", res.Mean64Up/1e6, res.MeanMTUUp/1e6)
		}
	}
}

// BenchmarkFig8Bandwidth150 regenerates Fig 8: the 150 Mbps target where
// the 64B/MTU trend reverses.
func BenchmarkFig8Bandwidth150(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.Fig8(context.Background(), env, experiments.Fast)
		if err != nil {
			b.Fatal(err)
		}
		if !(res.Mean64Up > res.MeanMTUUp) {
			b.Fatalf("Fig 8 shape violated: 64B up %.1f !> MTU up %.1f", res.Mean64Up/1e6, res.MeanMTUUp/1e6)
		}
	}
}

// BenchmarkFig9PacketLoss regenerates Fig 9: the per-path loss dot plot to
// AWS N. Virginia with the congestion episode on a shared first-half node.
func BenchmarkFig9PacketLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.Fig9(context.Background(), env, experiments.Fast)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.FullLossPaths) == 0 {
			b.Fatal("no full-loss paths")
		}
	}
}

// BenchmarkTableReachability regenerates the §6 in-text numbers: 21
// reachable destinations, average path length, fraction within 6 hops.
func BenchmarkTableReachability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		tab, err := experiments.TableReachability(env)
		if err != nil {
			b.Fatal(err)
		}
		if tab.ReachableServers != 21 {
			b.Fatalf("reachable %d", tab.ReachableServers)
		}
	}
}

// BenchmarkTableFilter regenerates the §5.2 hop-slack retention counts.
func BenchmarkTableFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		if _, err := experiments.TableFilter(context.Background(), env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks ------------------------------------------------
// These quantify the cost and necessity of the model mechanisms DESIGN.md
// §5 calls out: each run re-validates that the mechanism produces (and its
// removal destroys) the corresponding figure shape.

// BenchmarkAblationCollapse pairs Fig 8 with and without the overload
// goodput collapse; the reversal must hold only with it.
func BenchmarkAblationCollapse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationReversal(context.Background(), int64(i), experiments.Fast)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ReversalHolds() || !res.ReversalGoneWithoutCollapse() {
			b.Fatalf("ablation shape violated: %+v", res)
		}
	}
}

// BenchmarkAblationJitter pairs Fig 5's box spreads with and without
// per-AS jitter.
func BenchmarkAblationJitter(b *testing.B) {
	scale := experiments.Fast
	scale.Iterations = 6
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunAblationJitter(context.Background(), int64(i), scale)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ContrastHolds() {
			b.Fatalf("jitter contrast missing: %+v", res)
		}
	}
}

// --- Substrate micro-benchmarks ----------------------------------------

// BenchmarkScaling sweeps generated world sizes to show how beaconing and
// path combination scale beyond the 35-AS SCIONLab topology.
func BenchmarkScaling(b *testing.B) {
	for _, isds := range []int{4, 8, 16} {
		spec := topology.GenerateSpec{Seed: 1, ISDs: isds, MaxNonCorePerISD: 6, ExtraCoreLinks: isds / 2}
		topo, err := topology.Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		servers := topo.Servers()
		if len(servers) == 0 {
			b.Fatal("no servers generated")
		}
		b.Run(fmt.Sprintf("beaconing/isds=%d/ases=%d", isds, len(topo.ASes())), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				segment.Discover(topo, segment.Options{})
			}
		})
		b.Run(fmt.Sprintf("paths/isds=%d/ases=%d", isds, len(topo.ASes())), func(b *testing.B) {
			reg := segment.Discover(topo, segment.Options{})
			c := pathmgr.NewCombiner(topo, reg)
			src := servers[0].IA
			dst := servers[len(servers)-1].IA
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Paths(src, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBeaconing(b *testing.B) {
	topo := topology.DefaultWorld()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := segment.Discover(topo, segment.Options{})
		if len(reg.DownByLeaf) == 0 {
			b.Fatal("no segments")
		}
	}
}

func BenchmarkPathCombination(b *testing.B) {
	topo := topology.DefaultWorld()
	reg := segment.Discover(topo, segment.Options{})
	c := pathmgr.NewCombiner(topo, reg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths, err := c.Paths(topology.MyAS, topology.AWSIreland)
		if err != nil || len(paths) == 0 {
			b.Fatal(err)
		}
	}
}

func BenchmarkShowPaths40(b *testing.B) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 1})
	d, err := sciond.New(topo, net, topology.MyAS)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ShowPaths(topology.AWSIreland, sciond.ShowPathsOpts{MaxPaths: 40}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPing30(b *testing.B) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 1})
	d, _ := sciond.New(topo, net, topology.MyAS)
	paths, _ := d.PathsTo(topology.AWSIreland)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scmp.Ping(net, paths[0], scmp.PingOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBandwidthTest(b *testing.B) {
	topo := topology.DefaultWorld()
	net := simnet.New(topo, simnet.Options{Seed: 1})
	d, _ := sciond.New(topo, net, topology.MyAS)
	paths, _ := d.PathsTo(topology.MagdeburgAP)
	params, _ := bwtest.ParseParams("3,MTU,?,12Mbps", paths[0].MTU)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bwtest.Run(net, paths[0], params, bwtest.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDocDBInsertBatch(b *testing.B) {
	db := docdb.MustOpen()
	col := db.Collection("bench")
	batch := make([]docdb.Document, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range batch {
			batch[j] = docdb.Document{
				"_id":  fmt.Sprintf("%d_%d", i, j),
				"hops": j % 8, "loss": float64(j % 100),
			}
		}
		if err := col.InsertMany(batch); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDocDBQuery(b *testing.B) {
	db := docdb.MustOpen()
	col := db.Collection("bench")
	for i := 0; i < 5000; i++ {
		col.Insert(docdb.Document{"_id": fmt.Sprintf("d%d", i), "hops": i % 8, "loss": float64(i % 100)})
	}
	f := docdb.And(docdb.Eq("hops", 6), docdb.Lt("loss", 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs := col.Find(docdb.Query{Filter: f, SortBy: "loss"})
		if len(docs) == 0 {
			b.Fatal("no results")
		}
	}
}

func BenchmarkEventEngine(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := simnet.NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(time.Duration(j%97)*time.Millisecond, func() {})
		}
		e.Run()
	}
}

func BenchmarkSelection(b *testing.B) {
	env := mustEnv(b, 1)
	id, err := env.ServerID(topology.AWSIreland)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := env.Suite.Run(context.Background(), measure.RunOpts{
		Iterations: 2, ServerIDs: []int{id},
		PingCount: 5, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		b.Fatal(err)
	}
	engine := selection.New(env.DB, env.Topo)
	req := selection.Request{
		Objective:        selection.LowestLatency,
		ExcludeCountries: []string{"United States"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.Select(context.Background(), id, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCollectPaths(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		if _, err := measure.CollectPaths(context.Background(), env.DB, env.Daemon, measure.CollectOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullCampaign runs the complete §6 data-gathering campaign over
// the 5-destination focus subset (the "~3000 samples" table row).
func BenchmarkFullCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.FullCampaign(context.Background(), env, experiments.Fast)
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkFullCampaignParallel runs the same campaign on the sharded
// engine with 4 workers; compare against BenchmarkFullCampaign to see the
// wall-clock speedup (the merged stats database is identical either way).
// The cells are CPU-bound simulated measurements, so the speedup tracks
// GOMAXPROCS: expect ~parity on a single-core runner and close to 4x on
// four or more cores.
func BenchmarkFullCampaignParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.FullCampaignParallel(context.Background(), env, experiments.Fast, 4)
		if err != nil {
			b.Fatal(err)
		}
		if res.Samples == 0 {
			b.Fatal("no samples")
		}
	}
}

// BenchmarkDocDBQueryIndexedVsScan quantifies the hash-index speedup the
// §4.2.1 scalability requirement rests on.
func BenchmarkDocDBQueryIndexedVsScan(b *testing.B) {
	build := func(indexed bool) *docdb.Collection {
		db := docdb.MustOpen()
		col := db.Collection("bench")
		batch := make([]docdb.Document, 0, 20000)
		for i := 0; i < 20000; i++ {
			batch = append(batch, docdb.Document{
				"_id": fmt.Sprintf("s%d", i), "path_id": fmt.Sprintf("2_%d", i%50),
			})
		}
		if err := col.InsertMany(batch); err != nil {
			b.Fatal(err)
		}
		if indexed {
			col.EnsureIndex("path_id")
		}
		return col
	}
	for name, indexed := range map[string]bool{"scan": false, "indexed": true} {
		b.Run(name, func(b *testing.B) {
			col := build(indexed)
			f := docdb.Eq("path_id", "2_17")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := col.Find(docdb.Query{Filter: f}); len(got) != 400 {
					b.Fatalf("got %d", len(got))
				}
			}
		})
	}
}

// BenchmarkCorrelation regenerates the §6.1 claim quantification
// (distance-vs-latency and hops-vs-latency Pearson coefficients).
func BenchmarkCorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := mustEnv(b, int64(i))
		res, err := experiments.Correlation(context.Background(), env, experiments.Fast, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.DistanceVsLatency <= res.HopsVsLatency {
			b.Fatalf("distance r=%.3f !> hops r=%.3f", res.DistanceVsLatency, res.HopsVsLatency)
		}
	}
}

// BenchmarkAuthSignVerify measures the statistics-authentication overhead
// per measurement document (§4.2.2 extension).
func BenchmarkAuthSignVerify(b *testing.B) {
	trc, err := auth.NewTRC(topology.DefaultWorld().CoreASes(17)[0].IA)
	if err != nil {
		b.Fatal(err)
	}
	key, err := auth.GenerateKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	cert, err := trc.Issue(topology.MyAS, key.Public, time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doc := docdb.Document{
			"_id": fmt.Sprintf("1_1@%d", i), "avg_latency_ms": 42.5,
			"loss_pct": 0.0, "bw_up_mtu_bps": 11.9e6,
		}
		if err := auth.SignDocument(doc, topology.MyAS, key); err != nil {
			b.Fatal(err)
		}
		if err := auth.VerifyDocument(doc, cert, trc, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecommend measures the multi-criteria recommender over a
// measured candidate set (§7 future-work extension).
func BenchmarkRecommend(b *testing.B) {
	env := mustEnv(b, 2)
	id, err := env.ServerID(topology.AWSIreland)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := env.Suite.Run(context.Background(), measure.RunOpts{
		Iterations: 2, ServerIDs: []int{id},
		PingCount: 5, PingInterval: 5 * time.Millisecond, SkipBandwidth: true,
	}); err != nil {
		b.Fatal(err)
	}
	engine := env.Selection()
	intent := upin.Intent{ServerID: id}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := upin.Recommend(context.Background(), engine, intent, upin.ProfileVoIP, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func mustEnv(b *testing.B, seed int64) *experiments.Env {
	b.Helper()
	env, err := experiments.NewEnv(seed)
	if err != nil {
		b.Fatal(err)
	}
	return env
}
