module github.com/upin/scionpath

go 1.22
